#include "core/context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/baselines.h"
#include "core/fairness_metrics.h"
#include "core/kemeny.h"
#include "core/method_registry.h"
#include "core/precedence.h"
#include "mallows/mallows.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/threading.h"

namespace manirank {
namespace {

struct Fixture {
  CandidateTable table;
  std::vector<Ranking> base;
};

Fixture MakeFixture(int n, uint64_t seed, double theta, int num_rankings = 20) {
  Rng rng(seed);
  CandidateTable table = testing::CyclicTable(n, 2, 2);
  Ranking modal = testing::RandomRanking(n, &rng);
  MallowsModel model(modal, theta);
  return {std::move(table), model.SampleMany(num_rankings, seed)};
}

TEST(ConsensusContextTest, PrecedenceMatchesDirectBuild) {
  Fixture f = MakeFixture(12, 101, 0.7);
  ConsensusContext ctx(f.base, f.table);
  const PrecedenceMatrix direct = PrecedenceMatrix::Build(f.base);
  const PrecedenceMatrix& cached = ctx.Precedence();
  ASSERT_EQ(cached.size(), direct.size());
  for (CandidateId a = 0; a < 12; ++a) {
    for (CandidateId b = 0; b < 12; ++b) {
      EXPECT_DOUBLE_EQ(cached.W(a, b), direct.W(a, b));
    }
  }
}

TEST(ConsensusContextTest, PrecedenceBuiltExactlyOnceAcrossRunAll) {
  // The acceptance contract of the context layer: running every registry
  // method against one context pays for exactly one unweighted
  // Definition-11 build (plus one weighted build for B2).
  Fixture f = MakeFixture(16, 102, 0.8);
  ConsensusContext ctx(f.base, f.table);
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  std::vector<ConsensusOutput> outputs = ctx.RunAll(options);
  ASSERT_EQ(outputs.size(), AllMethods().size());
  const ContextStats stats = ctx.stats();
  EXPECT_EQ(stats.precedence_builds, 1);
  EXPECT_EQ(stats.weighted_builds, 1);
  EXPECT_EQ(stats.parity_score_builds, 1);
  // A second full sweep is served entirely from the caches.
  ctx.RunAll(options);
  const ContextStats again = ctx.stats();
  EXPECT_EQ(again.precedence_builds, 1);
  EXPECT_EQ(again.weighted_builds, 1);
  EXPECT_GE(again.weighted_hits, 1);
  EXPECT_EQ(again.parity_score_builds, 1);
}

TEST(ConsensusContextTest, CachedAndUncachedPathsAreBitIdentical) {
  // Every method must return the same consensus whether its inputs come
  // from cold caches (fresh context) or warm ones (context that already
  // served a full sweep).
  Fixture f = MakeFixture(14, 103, 0.6);
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  ConsensusContext warm(f.base, f.table);
  warm.RunAll(options);  // populate every cache
  for (const MethodSpec& method : AllMethods()) {
    ConsensusContext cold(f.base, f.table);
    ConsensusOutput from_cold = method.run(cold, options);
    ConsensusOutput from_warm = method.run(warm, options);
    EXPECT_EQ(from_cold.consensus.order(), from_warm.consensus.order())
        << method.name;
    EXPECT_EQ(from_cold.satisfied, from_warm.satisfied) << method.name;
  }
}

TEST(ConsensusContextTest, WeightedPrecedenceCachedPerWeightVector) {
  Fixture f = MakeFixture(10, 104, 0.5);
  ConsensusContext ctx(f.base, f.table);
  std::vector<double> unit(f.base.size(), 1.0);
  std::vector<double> ramp(f.base.size());
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i + 1);

  const PrecedenceMatrix& a = ctx.WeightedPrecedence(unit);
  const PrecedenceMatrix& b = ctx.WeightedPrecedence(ramp);
  const PrecedenceMatrix& a_again = ctx.WeightedPrecedence(unit);
  EXPECT_EQ(&a, &a_again) << "same weights must hit the cache";
  EXPECT_NE(&a, &b) << "distinct weights must get distinct matrices";
  const ContextStats stats = ctx.stats();
  EXPECT_EQ(stats.weighted_builds, 2);
  EXPECT_EQ(stats.weighted_hits, 1);

  // Content must match a direct build.
  const PrecedenceMatrix direct = PrecedenceMatrix::BuildWeighted(f.base, ramp);
  for (CandidateId x = 0; x < 10; ++x) {
    for (CandidateId y = 0; y < 10; ++y) {
      EXPECT_DOUBLE_EQ(b.W(x, y), direct.W(x, y));
    }
  }
}

TEST(ConsensusContextTest, EvaluateFairnessMatchesFreeFunction) {
  Fixture f = MakeFixture(15, 105, 0.4);
  ConsensusContext ctx(f.base, f.table);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    Ranking r = testing::RandomRanking(15, &rng);
    FairnessReport from_ctx = ctx.EvaluateFairness(r);
    FairnessReport from_free = EvaluateFairness(r, f.table);
    ASSERT_EQ(from_ctx.parity.size(), from_free.parity.size());
    for (size_t i = 0; i < from_ctx.parity.size(); ++i) {
      EXPECT_DOUBLE_EQ(from_ctx.parity[i], from_free.parity[i]);
      ASSERT_EQ(from_ctx.fpr[i].size(), from_free.fpr[i].size());
      for (size_t g = 0; g < from_ctx.fpr[i].size(); ++g) {
        EXPECT_DOUBLE_EQ(from_ctx.fpr[i][g], from_free.fpr[i][g]);
      }
    }
    for (double delta : {0.05, 0.2, 0.5}) {
      EXPECT_EQ(ctx.Satisfies(r, delta),
                SatisfiesManiRank(r, f.table, delta));
    }
  }
}

TEST(ConsensusContextTest, BaseParityScoresMatchBruteForce) {
  Fixture f = MakeFixture(12, 106, 0.6);
  ConsensusContext ctx(f.base, f.table);
  const std::vector<double>& scores = ctx.BaseParityScores();
  ASSERT_EQ(scores.size(), f.base.size());
  for (size_t i = 0; i < f.base.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], MaxParityScore(f.base[i], f.table)) << i;
  }
  EXPECT_EQ(ctx.FairestBaseIndex(),
            PickFairestPermIndex(f.base, f.table));
  EXPECT_EQ(ctx.KemenyFairnessWeights(), FairnessWeights(f.base, f.table));
}

TEST(ConsensusContextTest, ConcurrentPrecedenceAccessBuildsOnce) {
  Fixture f = MakeFixture(20, 107, 0.6, 50);
  ConsensusContext ctx(f.base, f.table);
  std::atomic<int> mismatches{0};
  ParallelFor(
      16,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          if (ctx.Precedence().size() != 20) mismatches.fetch_add(1);
        }
      },
      8);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(ctx.stats().precedence_builds, 1);
}

TEST(ConsensusContextTest, RunMethodByIdAndNameAndUnknownThrows) {
  Fixture f = MakeFixture(10, 108, 0.7);
  ConsensusContext ctx(f.base, f.table);
  ConsensusOptions options;
  options.delta = 0.25;
  ConsensusOutput by_id = ctx.RunMethod("A4", options);
  ConsensusOutput by_name = ctx.RunMethod("Fair-Copeland", options);
  EXPECT_EQ(by_id.consensus.order(), by_name.consensus.order());
  EXPECT_THROW(ctx.RunMethod("no-such-method", options),
               std::invalid_argument);
}

TEST(ConsensusContextTest, KemenyThroughContextMatchesDirectPipeline) {
  // The context is plumbing, not math: B1 through the registry equals
  // KemenyAggregate on a hand-built matrix.
  Fixture f = MakeFixture(9, 109, 0.9);
  ConsensusContext ctx(f.base, f.table);
  ConsensusOptions options;
  options.time_limit_seconds = 60.0;
  ConsensusOutput through_ctx = ctx.RunMethod("B1", options);
  KemenyOptions kopts;
  kopts.time_limit_seconds = 60.0;
  KemenyResult direct = KemenyAggregate(PrecedenceMatrix::Build(f.base), kopts);
  EXPECT_EQ(through_ctx.consensus.order(), direct.ranking.order());
}

// AddRankings folds precedence deltas through the bit-sliced batch path
// in 64-ranking chunks; under every kernel flavor the warm context must
// land on the bits of a fresh scalar rebuild over the grown profile, with
// the same observable delta counters as the per-ranking path.
TEST(ConsensusContextTest, BatchAddMatchesRebuildUnderEveryKernel) {
  Fixture f = MakeFixture(70, 111, 0.6, 30);
  // 150 appended rankings: two full 64-chunks plus a remainder.
  std::vector<Ranking> appended;
  Rng rng(1111);
  for (int i = 0; i < 150; ++i) {
    appended.push_back(testing::RandomRanking(70, &rng));
  }
  std::vector<Ranking> grown = f.base;
  grown.insert(grown.end(), appended.begin(), appended.end());
  std::vector<std::vector<double>> reference;
  {
    testing::ScopedKernelEnv env("scalar");
    reference = PrecedenceMatrix::Build(grown).ToDense();
  }
  for (const std::string& kernel : testing::AllPrecedenceKernels()) {
    testing::ScopedKernelEnv env(kernel.c_str());
    ConsensusContext ctx(f.base, f.table);
    ctx.Precedence();  // warm, so AddRankings exercises the delta path
    ctx.AddRankings(appended);
    EXPECT_EQ(ctx.Precedence().ToDense(), reference) << "kernel=" << kernel;
    const ContextStats stats = ctx.stats();
    EXPECT_EQ(stats.precedence_builds, 1) << "kernel=" << kernel;
    EXPECT_EQ(stats.precedence_delta_updates, 150) << "kernel=" << kernel;
    EXPECT_EQ(ctx.generation(), 150u) << "kernel=" << kernel;
    EXPECT_EQ(ctx.num_rankings(), grown.size()) << "kernel=" << kernel;
  }
}

}  // namespace
}  // namespace manirank
