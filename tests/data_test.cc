#include <gtest/gtest.h>

#include <sstream>

#include "core/distance.h"
#include "core/fairness_metrics.h"
#include "data/csrankings_generator.h"
#include "data/csv.h"
#include "data/exam_generator.h"

namespace manirank {
namespace {

TEST(ExamGeneratorTest, ShapeMatchesCaseStudy) {
  ExamDataset data = GenerateExamDataset();
  EXPECT_EQ(data.table.num_candidates(), 200);
  EXPECT_EQ(data.table.num_attributes(), 3);
  EXPECT_EQ(data.base_rankings.size(), 3u);  // math, reading, writing
  EXPECT_EQ(data.subjects.size(), 3u);
  for (const Ranking& r : data.base_rankings) {
    EXPECT_EQ(r.size(), 200);
  }
}

TEST(ExamGeneratorTest, DeterministicInSeed) {
  ExamDataset a = GenerateExamDataset();
  ExamDataset b = GenerateExamDataset();
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(a.base_rankings[s], b.base_rankings[s]);
  }
  ExamGeneratorOptions other;
  other.seed = 9;
  ExamDataset c = GenerateExamDataset(other);
  EXPECT_NE(a.base_rankings[0], c.base_rankings[0]);
}

TEST(ExamGeneratorTest, RankingsFollowScores) {
  ExamDataset data = GenerateExamDataset();
  for (size_t s = 0; s < 3; ++s) {
    const Ranking& r = data.base_rankings[s];
    for (int p = 0; p + 1 < r.size(); ++p) {
      EXPECT_GE(data.scores[r.At(p)][s], data.scores[r.At(p + 1)][s]);
    }
  }
}

TEST(ExamGeneratorTest, BiasPatternMatchesTableIV) {
  // The paper's Table IV shape: every base ranking far from parity,
  // SubLunch group clearly below NoSub, NatHaw lowest among races, men
  // ahead on reading/writing, women ahead on math.
  ExamDataset data = GenerateExamDataset();
  const CandidateTable& t = data.table;
  const Grouping& gender = t.attribute_grouping(0);
  const Grouping& race = t.attribute_grouping(1);
  const Grouping& lunch = t.attribute_grouping(2);
  auto label_fpr = [](const Grouping& g, const std::vector<double>& fpr,
                      const std::string& label) {
    for (int i = 0; i < g.num_groups(); ++i) {
      if (g.labels[i] == label) return fpr[i];
    }
    ADD_FAILURE() << "missing group " << label;
    return 0.5;
  };
  for (size_t s = 0; s < 3; ++s) {
    const Ranking& r = data.base_rankings[s];
    std::vector<double> lunch_fpr = GroupFpr(r, lunch);
    EXPECT_GT(label_fpr(lunch, lunch_fpr, "NoSub"),
              label_fpr(lunch, lunch_fpr, "SubLunch") + 0.15)
        << data.subjects[s];
    std::vector<double> race_fpr = GroupFpr(r, race);
    const double nathaw = label_fpr(race, race_fpr, "NatHaw");
    for (const std::string& other : {"Asian", "White", "Black", "AlaskaNat"}) {
      EXPECT_LT(nathaw, label_fpr(race, race_fpr, other)) << data.subjects[s];
    }
  }
  // Gender flips: women lead math, men lead reading and writing.
  std::vector<double> math_fpr = GroupFpr(data.base_rankings[0], gender);
  EXPECT_GT(label_fpr(gender, math_fpr, "Women"),
            label_fpr(gender, math_fpr, "Men"));
  for (size_t s : {1u, 2u}) {
    std::vector<double> fpr = GroupFpr(data.base_rankings[s], gender);
    EXPECT_GT(label_fpr(gender, fpr, "Men"), label_fpr(gender, fpr, "Women"))
        << data.subjects[s];
  }
}

TEST(ExamGeneratorTest, BaseRankingsViolateParity) {
  ExamDataset data = GenerateExamDataset();
  for (const Ranking& r : data.base_rankings) {
    FairnessReport report = EvaluateFairness(r, data.table);
    EXPECT_GT(report.MaxParity(), 0.2);  // "ARP >= .2 across all rankings"
  }
}

TEST(CsRankingsGeneratorTest, ShapeMatchesAppendix) {
  CsRankingsDataset data = GenerateCsRankingsDataset();
  EXPECT_EQ(data.table.num_candidates(), 65);
  EXPECT_EQ(data.yearly_rankings.size(), 21u);
  EXPECT_EQ(data.year_labels.front(), "2000");
  EXPECT_EQ(data.year_labels.back(), "2020");
}

TEST(CsRankingsGeneratorTest, NortheastAndPrivateBias) {
  CsRankingsDataset data = GenerateCsRankingsDataset();
  const Grouping& location = data.table.attribute_grouping(0);
  const Grouping& type = data.table.attribute_grouping(1);
  auto label_fpr = [](const Grouping& g, const std::vector<double>& fpr,
                      const std::string& label) {
    for (int i = 0; i < g.num_groups(); ++i) {
      if (g.labels[i] == label) return fpr[i];
    }
    return 0.5;
  };
  int northeast_top = 0, private_top = 0;
  for (const Ranking& r : data.yearly_rankings) {
    std::vector<double> loc_fpr = GroupFpr(r, location);
    std::vector<double> type_fpr = GroupFpr(r, type);
    if (label_fpr(location, loc_fpr, "Northeast") >
        label_fpr(location, loc_fpr, "South") + 0.2) {
      ++northeast_top;
    }
    if (label_fpr(type, type_fpr, "Private") >
        label_fpr(type, type_fpr, "Public")) {
      ++private_top;
    }
  }
  // The bias must hold in (almost) every year, as in Table V.
  EXPECT_GE(northeast_top, 19);
  EXPECT_GE(private_top, 19);
}

TEST(CsRankingsGeneratorTest, YearlyRankingsVaryButStayClose) {
  CsRankingsDataset data = GenerateCsRankingsDataset();
  int distinct = 0;
  for (size_t y = 1; y < data.yearly_rankings.size(); ++y) {
    distinct += (data.yearly_rankings[y] != data.yearly_rankings[0]);
  }
  EXPECT_GE(distinct, 18);  // years differ...
  for (const Ranking& r : data.yearly_rankings) {
    // ...but each stays recognisably close to the latent modal ranking.
    EXPECT_LT(NormalizedKendallTau(r, data.modal), 0.25);
  }
}

TEST(CsvTest, RankingsRoundTrip) {
  std::vector<Ranking> rankings = {Ranking({2, 0, 1}), Ranking({1, 2, 0})};
  std::ostringstream os;
  WriteRankingsCsv(os, rankings);
  std::istringstream is(os.str());
  std::vector<Ranking> parsed = ReadRankingsCsv(is);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], rankings[0]);
  EXPECT_EQ(parsed[1], rankings[1]);
}

TEST(CsvTest, RejectsNonPermutationRows) {
  std::istringstream is("0,0,1\n");
  EXPECT_THROW(ReadRankingsCsv(is), std::runtime_error);
}

TEST(CsvTest, RejectsRaggedRows) {
  std::istringstream is("0,1,2\n1,0\n");
  EXPECT_THROW(ReadRankingsCsv(is), std::runtime_error);
}

TEST(CsvTest, CandidateTableRoundTrip) {
  ExamDataset data = GenerateExamDataset({20, 3});
  std::ostringstream os;
  WriteCandidateTableCsv(os, data.table);
  std::istringstream is(os.str());
  CandidateTable parsed = ReadCandidateTableCsv(is);
  ASSERT_EQ(parsed.num_candidates(), data.table.num_candidates());
  ASSERT_EQ(parsed.num_attributes(), data.table.num_attributes());
  for (CandidateId c = 0; c < parsed.num_candidates(); ++c) {
    for (int a = 0; a < parsed.num_attributes(); ++a) {
      EXPECT_EQ(parsed.attribute(a).values[parsed.value(c, a)],
                data.table.attribute(a).values[data.table.value(c, a)]);
    }
  }
}

TEST(CsvTest, SplitHandlesWhitespaceAndTrailingComma) {
  std::vector<std::string> cells = SplitCsvLine(" a , b ,");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "b");
  EXPECT_EQ(cells[2], "");
}

}  // namespace
}  // namespace manirank
