#include "core/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

TEST(KendallTauTest, IdenticalRankingsHaveDistanceZero) {
  Rng rng(1);
  Ranking r = testing::RandomRanking(12, &rng);
  EXPECT_EQ(KendallTau(r, r), 0);
}

TEST(KendallTauTest, ReversalIsMaximal) {
  Ranking r = Ranking::Identity(10);
  EXPECT_EQ(KendallTau(r, r.Reversed()), TotalPairs(10));
}

TEST(KendallTauTest, SingleAdjacentSwapIsOne) {
  Ranking a = Ranking::Identity(6);
  Ranking b = a;
  b.SwapPositions(2, 3);
  EXPECT_EQ(KendallTau(a, b), 1);
}

TEST(KendallTauTest, KnownSmallExample) {
  // a = [0 1 2], b = [2 0 1]: discordant pairs {0,2}, {1,2}.
  Ranking a({0, 1, 2});
  Ranking b({2, 0, 1});
  EXPECT_EQ(KendallTau(a, b), 2);
}

TEST(KendallTauTest, EmptyAndSingleton) {
  EXPECT_EQ(KendallTau(Ranking(), Ranking()), 0);
  EXPECT_EQ(KendallTau(Ranking::Identity(1), Ranking::Identity(1)), 0);
}

TEST(NormalizedKendallTauTest, RangeAndExtremes) {
  Ranking r = Ranking::Identity(9);
  EXPECT_DOUBLE_EQ(NormalizedKendallTau(r, r), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedKendallTau(r, r.Reversed()), 1.0);
}

class KendallTauPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KendallTauPropertyTest, FastMatchesBruteForce) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 31);
  for (int trial = 0; trial < 25; ++trial) {
    Ranking a = testing::RandomRanking(n, &rng);
    Ranking b = testing::RandomRanking(n, &rng);
    ASSERT_EQ(KendallTau(a, b), KendallTauBruteForce(a, b));
  }
}

TEST_P(KendallTauPropertyTest, IsAMetric) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 37);
  for (int trial = 0; trial < 10; ++trial) {
    Ranking a = testing::RandomRanking(n, &rng);
    Ranking b = testing::RandomRanking(n, &rng);
    Ranking c = testing::RandomRanking(n, &rng);
    const int64_t ab = KendallTau(a, b);
    const int64_t ba = KendallTau(b, a);
    const int64_t bc = KendallTau(b, c);
    const int64_t ac = KendallTau(a, c);
    ASSERT_EQ(ab, ba);                       // symmetry
    ASSERT_GE(ab, 0);                        // non-negativity
    ASSERT_EQ(ab == 0, a == b);              // identity of indiscernibles
    ASSERT_LE(ac, ab + bc);                  // triangle inequality
    ASSERT_LE(ab, TotalPairs(n));            // bounded
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KendallTauPropertyTest,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 50));

TEST(PdLossTest, ZeroWhenAllRankingsEqualConsensus) {
  Ranking r = Ranking::Identity(8);
  std::vector<Ranking> base(5, r);
  EXPECT_DOUBLE_EQ(PdLoss(base, r), 0.0);
}

TEST(PdLossTest, OneWhenConsensusReversesEveryRanking) {
  Ranking r = Ranking::Identity(8);
  std::vector<Ranking> base(3, r);
  EXPECT_DOUBLE_EQ(PdLoss(base, r.Reversed()), 1.0);
}

TEST(PdLossTest, AveragesOverRankings) {
  Ranking id = Ranking::Identity(4);
  std::vector<Ranking> base = {id, id.Reversed()};
  // Consensus = identity: distances 0 and 6 over omega = 6, |R| = 2.
  EXPECT_DOUBLE_EQ(PdLoss(base, id), 0.5);
}

TEST(PdLossTest, EmptyProfile) {
  EXPECT_DOUBLE_EQ(PdLoss({}, Ranking::Identity(5)), 0.0);
}

TEST(PdLossTest, WithinUnitIntervalOnRandomProfiles) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Ranking> base;
    for (int i = 0; i < 7; ++i) base.push_back(testing::RandomRanking(15, &rng));
    Ranking consensus = testing::RandomRanking(15, &rng);
    const double loss = PdLoss(base, consensus);
    ASSERT_GE(loss, 0.0);
    ASSERT_LE(loss, 1.0);
  }
}

TEST(PdLossTest, ParallelAndSerialAgree) {
  Rng rng(88);
  std::vector<Ranking> base;
  for (int i = 0; i < 40; ++i) base.push_back(testing::RandomRanking(30, &rng));
  Ranking consensus = testing::RandomRanking(30, &rng);
  const double parallel = PdLoss(base, consensus);
  // Serial reference.
  int64_t total = 0;
  for (const Ranking& r : base) total += KendallTau(consensus, r);
  const double serial =
      static_cast<double>(total) /
      (static_cast<double>(TotalPairs(30)) * static_cast<double>(base.size()));
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(PriceOfFairnessTest, ZeroWhenRankingsCoincide) {
  Rng rng(9);
  std::vector<Ranking> base;
  for (int i = 0; i < 4; ++i) base.push_back(testing::RandomRanking(10, &rng));
  Ranking c = testing::RandomRanking(10, &rng);
  EXPECT_DOUBLE_EQ(PriceOfFairness(base, c, c), 0.0);
}

TEST(PriceOfFairnessTest, MatchesPdLossDifference) {
  Rng rng(10);
  std::vector<Ranking> base;
  for (int i = 0; i < 6; ++i) base.push_back(testing::RandomRanking(12, &rng));
  Ranking fair = testing::RandomRanking(12, &rng);
  Ranking unfair = testing::RandomRanking(12, &rng);
  EXPECT_NEAR(PriceOfFairness(base, fair, unfair),
              PdLoss(base, fair) - PdLoss(base, unfair), 1e-12);
}

}  // namespace
}  // namespace manirank
