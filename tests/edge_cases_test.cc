// Edge cases and failure injection across modules: degenerate sizes,
// unreachable thresholds, extreme parameters, and robustness of the public
// entry points when inputs sit on boundaries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "manirank.h"
#include "test_util.h"

namespace manirank {
namespace {

TEST(EdgeCaseTest, SingleCandidateEverywhere) {
  std::vector<Attribute> attrs = {{"A", {"a0", "a1"}}};
  std::vector<std::vector<AttributeValue>> values = {{0}};
  CandidateTable t(std::move(attrs), std::move(values));
  Ranking r = Ranking::Identity(1);
  // One candidate: no pairs, everything vacuously fair.
  EXPECT_TRUE(SatisfiesManiRank(r, t, 0.0));
  EXPECT_DOUBLE_EQ(PdLoss({r, r}, r), 0.0);
  MakeMrFairResult repaired = MakeMrFair(r, t, {});
  EXPECT_TRUE(repaired.satisfied);
  EXPECT_EQ(repaired.swaps, 0);
}

TEST(EdgeCaseTest, AllCandidatesInOneGroup) {
  std::vector<Attribute> attrs = {{"A", {"only", "unused"}}};
  std::vector<std::vector<AttributeValue>> values(10, {0});
  CandidateTable t(std::move(attrs), std::move(values));
  Rng rng(1);
  Ranking r = testing::RandomRanking(10, &rng);
  // No mixed pairs at all: parity 0, nothing to repair.
  EXPECT_DOUBLE_EQ(RankParity(r, t.attribute_grouping(0)), 0.0);
  MakeMrFairOptions options;
  options.delta = 0.0;
  MakeMrFairResult repaired = MakeMrFair(r, t, options);
  EXPECT_TRUE(repaired.satisfied);
  EXPECT_EQ(repaired.ranking, r);
}

TEST(EdgeCaseTest, UnreachableThresholdReportsFailureAndImproves) {
  // Two candidates in different groups: FPRs are always {1, 0}; parity 1.
  std::vector<Attribute> attrs = {{"A", {"a0", "a1"}}};
  std::vector<std::vector<AttributeValue>> values = {{0}, {1}};
  CandidateTable t(std::move(attrs), std::move(values));
  MakeMrFairOptions options;
  options.delta = 0.5;
  MakeMrFairResult repaired = MakeMrFair(Ranking::Identity(2), t, options);
  EXPECT_FALSE(repaired.satisfied);
  ASSERT_TRUE(Ranking::IsValidOrder(repaired.ranking.order()));
}

TEST(EdgeCaseTest, OddMixedPairCountMakesParityZeroUnreachable) {
  // 15 + 15 split: 225 mixed pairs (odd) -> exact parity impossible; the
  // stall guard must terminate and return the best configuration.
  std::vector<Attribute> attrs = {{"A", {"a0", "a1"}}};
  std::vector<std::vector<AttributeValue>> values(30, std::vector<AttributeValue>(1));
  for (int c = 15; c < 30; ++c) values[c][0] = 1;
  CandidateTable t(std::move(attrs), std::move(values));
  MakeMrFairOptions options;
  options.delta = 0.0;
  MakeMrFairResult repaired = MakeMrFair(Ranking::Identity(30), t, options);
  EXPECT_FALSE(repaired.satisfied);
  // The best achievable gap is 1/225.
  EXPECT_LE(RankParity(repaired.ranking, t.attribute_grouping(0)),
            1.0 / 225.0 + 1e-9);
}

TEST(EdgeCaseTest, DeltaOneIsAlwaysSatisfiedWithoutSwaps) {
  Rng rng(2);
  CandidateTable t = testing::CyclicTable(20, 2, 3);
  Ranking r = testing::RandomRanking(20, &rng);
  MakeMrFairOptions options;
  options.delta = 1.0;
  MakeMrFairResult repaired = MakeMrFair(r, t, options);
  EXPECT_TRUE(repaired.satisfied);
  EXPECT_EQ(repaired.swaps, 0);
  EXPECT_EQ(repaired.ranking, r);
}

TEST(EdgeCaseTest, SingleBaseRankingConsensusIsItself) {
  Rng rng(3);
  Ranking only = testing::RandomRanking(12, &rng);
  std::vector<Ranking> base = {only};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult kemeny = KemenyAggregate(w);
  EXPECT_TRUE(kemeny.optimal);
  EXPECT_EQ(kemeny.ranking, only);
  EXPECT_EQ(BordaAggregate(base), only);
  EXPECT_EQ(SchulzeAggregate(w), only);
  EXPECT_EQ(CopelandAggregate(w), only);
}

TEST(EdgeCaseTest, TwoOpposedRankings) {
  // Perfectly split profile: every consensus has the same PD loss of 0.5.
  Ranking a = Ranking::Identity(8);
  std::vector<Ranking> base = {a, a.Reversed()};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult kemeny = KemenyAggregate(w);
  EXPECT_DOUBLE_EQ(PdLoss(base, kemeny.ranking), 0.5);
  EXPECT_DOUBLE_EQ(kemeny.cost, w.LowerBound());
}

TEST(EdgeCaseTest, MallowsThetaExtremes) {
  Ranking modal = Ranking::Identity(20);
  // Enormous theta: every sample equals the modal ranking.
  MallowsModel spike(modal, 50.0);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(spike.Sample(&rng), modal);
  EXPECT_NEAR(spike.ExpectedKendallTau(), 0.0, 1e-6);
  // theta = 0 normalizer equals log(n!).
  MallowsModel uniform(modal, 0.0);
  double log_fact = 0.0;
  for (int i = 2; i <= 20; ++i) log_fact += std::log(i);
  EXPECT_NEAR(uniform.LogNormalizer(), log_fact, 1e-9);
}

TEST(EdgeCaseTest, ModalDesignerWithEmptyCells) {
  ModalDesignSpec spec;
  spec.attributes = {{"A", {"a0", "a1"}}, {"B", {"b0", "b1"}}};
  spec.cell_counts = {6, 0, 0, 6};  // only the diagonal cells are populated
  spec.attribute_arp_target = {0.4, 0.4};
  spec.irp_target = 0.4;
  spec.tolerance = 0.05;
  ModalDesignResult design = DesignModalRanking(spec);
  EXPECT_EQ(design.table.num_candidates(), 12);
  EXPECT_EQ(design.table.intersection_grouping().num_groups(), 2);
  // A and B coincide on this population: their parities must agree.
  EXPECT_NEAR(design.report.parity[0], design.report.parity[1], 1e-12);
}

TEST(EdgeCaseTest, FairKemenyWithZeroAttributesIsPlainKemeny) {
  // Table with no attributes at all: no constraints; Fair-Kemeny should
  // reduce to Kemeny.
  CandidateTable t({}, std::vector<std::vector<AttributeValue>>(6));
  Rng rng(5);
  std::vector<Ranking> base;
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(6, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  FairKemenyResult fair = FairKemenyAggregate(w, t, {});
  KemenyResult plain = KemenyAggregate(w);
  ASSERT_TRUE(fair.feasible);
  EXPECT_DOUBLE_EQ(fair.cost, plain.cost);
}

TEST(EdgeCaseTest, PrecedenceWithZeroWeightRankings) {
  std::vector<Ranking> base = {Ranking({0, 1}), Ranking({1, 0})};
  PrecedenceMatrix w = PrecedenceMatrix::BuildWeighted(base, {0.0, 2.5});
  EXPECT_DOUBLE_EQ(w.W(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(w.W(0, 1), 2.5);
}

TEST(EdgeCaseTest, ExamGeneratorTinyCohort) {
  ExamGeneratorOptions options;
  options.num_students = 5;
  options.seed = 17;
  ExamDataset data = GenerateExamDataset(options);
  EXPECT_EQ(data.table.num_candidates(), 5);
  for (const Ranking& r : data.base_rankings) {
    EXPECT_TRUE(Ranking::IsValidOrder(r.order()));
  }
}

TEST(EdgeCaseTest, KendallTauOnNearSortedInput) {
  // Adversarial for naive counters: single element displaced end-to-end.
  const int n = 1000;
  std::vector<CandidateId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::rotate(order.begin(), order.begin() + 1, order.end());
  Ranking rotated(std::move(order));
  EXPECT_EQ(KendallTau(Ranking::Identity(n), rotated), n - 1);
}

TEST(EdgeCaseTest, TotalAndMixedPairHelpers) {
  EXPECT_EQ(TotalPairs(0), 0);
  EXPECT_EQ(TotalPairs(1), 0);
  EXPECT_EQ(TotalPairs(2), 1);
  EXPECT_EQ(MixedPairs(0, 10), 0);
  EXPECT_EQ(MixedPairs(10, 10), 0);
  EXPECT_EQ(MixedPairs(3, 10), 21);
}

}  // namespace
}  // namespace manirank
