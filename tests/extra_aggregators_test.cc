#include "core/extra_aggregators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/aggregators.h"
#include "core/kemeny.h"
#include "mallows/mallows.h"
#include "test_util.h"
#include "util/hungarian.h"
#include "util/rng.h"

namespace manirank {
namespace {

TEST(HungarianTest, IdentityCostMatrix) {
  std::vector<std::vector<int64_t>> cost = {
      {0, 5, 5}, {5, 0, 5}, {5, 5, 0}};
  int64_t total;
  std::vector<int> assignment = MinCostAssignment(cost, &total);
  EXPECT_EQ(total, 0);
  EXPECT_EQ(assignment, (std::vector<int>{0, 1, 2}));
}

TEST(HungarianTest, ForcedPermutation) {
  // Cheap entries form the permutation (0->2, 1->0, 2->1).
  std::vector<std::vector<int64_t>> cost = {
      {9, 9, 1}, {1, 9, 9}, {9, 1, 9}};
  int64_t total;
  std::vector<int> assignment = MinCostAssignment(cost, &total);
  EXPECT_EQ(total, 3);
  EXPECT_EQ(assignment, (std::vector<int>{2, 0, 1}));
}

TEST(HungarianTest, EmptyMatrix) {
  int64_t total = -1;
  EXPECT_TRUE(MinCostAssignment({}, &total).empty());
  EXPECT_EQ(total, 0);
}

TEST(HungarianTest, MatchesBruteForceOnRandomMatrices) {
  Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextUint64(5));  // 2..6
    std::vector<std::vector<int64_t>> cost(n, std::vector<int64_t>(n));
    for (auto& row : cost) {
      for (auto& cell : row) cell = static_cast<int64_t>(rng.NextUint64(50));
    }
    int64_t total;
    std::vector<int> assignment = MinCostAssignment(cost, &total);
    // Assignment must be a permutation.
    std::vector<int> sorted = assignment;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < n; ++i) ASSERT_EQ(sorted[i], i);
    // Compare with exhaustive search.
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    int64_t best = std::numeric_limits<int64_t>::max();
    do {
      int64_t c = 0;
      for (int i = 0; i < n; ++i) c += cost[i][perm[i]];
      best = std::min(best, c);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(total, best) << "trial " << trial;
  }
}

TEST(FootruleTest, UnanimousProfile) {
  Ranking shared({2, 0, 3, 1});
  std::vector<Ranking> base(3, shared);
  EXPECT_EQ(FootruleAggregate(base), shared);
  EXPECT_EQ(FootruleCost(base, shared), 0);
}

TEST(FootruleTest, MinimisesFootruleCostExactly) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 3 + static_cast<int>(rng.NextUint64(4));  // 3..6
    std::vector<Ranking> base;
    for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(n, &rng));
    Ranking result = FootruleAggregate(base);
    const int64_t result_cost = FootruleCost(base, result);
    // Exhaustive check.
    std::vector<CandidateId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    int64_t best = std::numeric_limits<int64_t>::max();
    do {
      best = std::min(best,
                      FootruleCost(base, Ranking{std::vector<CandidateId>(perm)}));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(result_cost, best) << "trial " << trial;
  }
}

TEST(FootruleTest, TwoApproximationOfKemeny) {
  // Diaconis–Graham: KT <= footrule <= 2 KT, so the footrule optimum has
  // Kemeny cost at most 2x the Kemeny optimum.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 6;
    std::vector<Ranking> base;
    for (int i = 0; i < 7; ++i) base.push_back(testing::RandomRanking(n, &rng));
    PrecedenceMatrix w = PrecedenceMatrix::Build(base);
    KemenyResult kemeny = BruteForceKemeny(w);
    const double footrule_kemeny_cost =
        w.KemenyCost(FootruleAggregate(base));
    EXPECT_LE(footrule_kemeny_cost, 2.0 * kemeny.cost + 1e-9);
  }
}

TEST(MedianRankTest, UnanimousProfile) {
  Ranking shared({1, 3, 0, 2});
  std::vector<Ranking> base(4, shared);
  EXPECT_EQ(MedianRankAggregate(base), shared);
}

TEST(MedianRankTest, OutlierRobustness) {
  // 4 agreeing rankings + 1 reversed outlier: median ignores the outlier.
  Ranking shared = Ranking::Identity(7);
  std::vector<Ranking> base(4, shared);
  base.push_back(shared.Reversed());
  EXPECT_EQ(MedianRankAggregate(base), shared);
}

TEST(Mc4Test, StationaryDistributionIsProbability) {
  Rng rng(7);
  std::vector<Ranking> base;
  for (int i = 0; i < 9; ++i) base.push_back(testing::RandomRanking(8, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  std::vector<double> pi = Mc4StationaryDistribution(w);
  double sum = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mc4Test, CondorcetWinnerGetsTopMass) {
  // Candidate 2 beats everyone in a strict majority of rankings.
  std::vector<Ranking> base = {Ranking({2, 0, 1, 3}), Ranking({2, 1, 3, 0}),
                               Ranking({2, 3, 0, 1}), Ranking({0, 1, 2, 3})};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  EXPECT_EQ(Mc4Aggregate(w).At(0), 2);
}

TEST(Mc4Test, UnanimousProfileOrdersByDominance) {
  Ranking shared({3, 1, 0, 2});
  std::vector<Ranking> base(5, shared);
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  EXPECT_EQ(Mc4Aggregate(w), shared);
}

TEST(RankedPairsTest, UnanimousProfile) {
  Ranking shared({4, 2, 0, 3, 1});
  std::vector<Ranking> base(3, shared);
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  EXPECT_EQ(RankedPairsAggregate(w), shared);
}

TEST(RankedPairsTest, CondorcetWinnerAndLoser) {
  Rng rng(11);
  std::vector<Ranking> base;
  const int n = 6;
  for (int i = 0; i < 9; ++i) {
    Ranking r = testing::RandomRanking(n, &rng);
    // Plant winner 5 on top and loser 0 at bottom in 2/3 of ballots.
    if (i % 3 != 0) {
      r.SwapPositions(0, r.PositionOf(5));
      r.SwapPositions(n - 1, r.PositionOf(0));
    }
    base.push_back(r);
  }
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  Ranking result = RankedPairsAggregate(w);
  EXPECT_EQ(result.At(0), 5);
  EXPECT_EQ(result.At(n - 1), 0);
}

TEST(RankedPairsTest, ResolvesMajorityCycle) {
  // 0 > 1 (2 votes), 1 > 2 (2 votes), 2 > 0 (2 votes) with different
  // margins: the weakest edge is dropped.
  std::vector<Ranking> base = {Ranking({0, 1, 2}), Ranking({0, 1, 2}),
                               Ranking({1, 2, 0}), Ranking({2, 0, 1}),
                               Ranking({1, 2, 0})};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  Ranking result = RankedPairsAggregate(w);
  ASSERT_EQ(result.size(), 3);
  EXPECT_TRUE(Ranking::IsValidOrder(result.order()));
  // 1>2 margin 3-2=1; 0>1 margin 3-2=1; 2>0 margin 3-2=1 — all tie at 1;
  // deterministic tie-break locks (0,1) then (1,2), drops (2,0).
  EXPECT_TRUE(result.Prefers(0, 1));
  EXPECT_TRUE(result.Prefers(1, 2));
}

class ExtraAggregatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtraAggregatorPropertyTest, AllReturnValidPermutations) {
  Rng rng(GetParam());
  const int n = 5 + static_cast<int>(rng.NextUint64(15));
  std::vector<Ranking> base;
  for (int i = 0; i < 7; ++i) base.push_back(testing::RandomRanking(n, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  for (const Ranking& r :
       {FootruleAggregate(base), MedianRankAggregate(base), Mc4Aggregate(w),
        RankedPairsAggregate(w)}) {
    ASSERT_EQ(r.size(), n);
    ASSERT_TRUE(Ranking::IsValidOrder(r.order()));
  }
}

TEST_P(ExtraAggregatorPropertyTest, ConcentratedMallowsRecoversModal) {
  Rng rng(GetParam() + 100);
  Ranking modal = testing::RandomRanking(12, &rng);
  MallowsModel model(modal, 2.0);
  std::vector<Ranking> base = model.SampleMany(151, GetParam());
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  EXPECT_EQ(RankedPairsAggregate(w), modal);
  EXPECT_EQ(Mc4Aggregate(w), modal);
  EXPECT_EQ(FootruleAggregate(base), modal);
  EXPECT_EQ(MedianRankAggregate(base), modal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtraAggregatorPropertyTest,
                         ::testing::Range<uint64_t>(600, 610));

}  // namespace
}  // namespace manirank
