#include "core/fair_kemeny.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/kemeny.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

/// Exhaustive constrained optimum: the cheapest ranking (Kemeny cost)
/// satisfying MANI-Rank at delta. n <= 8.
double BruteForceFairKemeny(const PrecedenceMatrix& w,
                            const CandidateTable& table, double delta,
                            bool* feasible) {
  const int n = w.size();
  std::vector<CandidateId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  *feasible = false;
  do {
    Ranking r{std::vector<CandidateId>(perm)};
    if (!SatisfiesManiRank(r, table, delta)) continue;
    *feasible = true;
    best = std::min(best, w.KemenyCost(r));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(FairKemenyTest, FastPathWhenUnconstrainedOptimumIsFair) {
  // Interleaved unanimous profile: Kemeny = shared ranking, already fair.
  CandidateTable t = testing::CyclicTable(8, 2, 2);
  Ranking shared({0, 1, 2, 3, 4, 5, 6, 7});  // cyclic values interleave
  std::vector<Ranking> base(3, shared);
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  FairKemenyOptions options;
  options.delta = 0.6;
  FairKemenyResult r = FairKemenyAggregate(w, t, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.ranking, shared);
}

TEST(FairKemenyTest, EnforcesDeltaOnBiasedProfile) {
  // Unanimously segregated profile; Fair-Kemeny must deviate.
  const int n = 8;
  std::vector<Attribute> attrs = {{"G", {"g0", "g1"}}};
  std::vector<std::vector<AttributeValue>> values(n, std::vector<AttributeValue>(1));
  for (int c = 0; c < n; ++c) values[c][0] = c < n / 2 ? 0 : 1;
  CandidateTable t(std::move(attrs), std::move(values));
  std::vector<Ranking> base(4, Ranking::Identity(n));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  FairKemenyOptions options;
  options.delta = 0.25;
  FairKemenyResult r = FairKemenyAggregate(w, t, options);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.optimal);
  EXPECT_TRUE(SatisfiesManiRank(r.ranking, t, 0.25));
  bool feasible;
  EXPECT_DOUBLE_EQ(r.cost, BruteForceFairKemeny(w, t, 0.25, &feasible));
}

TEST(FairKemenyTest, InfeasibleDeltaDetected) {
  // Two candidates in different groups: FPRs are {1, 0} in any ranking, so
  // delta = 0.5 is unachievable.
  std::vector<Attribute> attrs = {{"G", {"g0", "g1"}}};
  std::vector<std::vector<AttributeValue>> values = {{0}, {1}};
  CandidateTable t(std::move(attrs), std::move(values));
  std::vector<Ranking> base = {Ranking::Identity(2)};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  FairKemenyOptions options;
  options.delta = 0.5;
  FairKemenyResult r = FairKemenyAggregate(w, t, options);
  EXPECT_FALSE(r.feasible);
}

TEST(FairKemenyTest, AttributeOnlyAblationLeavesIntersectionFree) {
  CandidateTable t = testing::CyclicTable(12, 2, 2);
  Rng rng(3);
  std::vector<Ranking> base;
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(12, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  FairKemenyOptions attr_only;
  attr_only.delta = 0.1;
  attr_only.constrain_intersection = false;
  FairKemenyResult r = FairKemenyAggregate(w, t, attr_only);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(AttributeRankParity(r.ranking, t, 0), 0.1 + 1e-9);
  EXPECT_LE(AttributeRankParity(r.ranking, t, 1), 0.1 + 1e-9);
  // No assertion on IRP: it may exceed delta (that is the point of Fig 3a).
}

TEST(FairKemenyTest, IntersectionOnlyAblationConstrainsIrp) {
  CandidateTable t = testing::CyclicTable(12, 2, 2);
  Rng rng(5);
  std::vector<Ranking> base;
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(12, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  FairKemenyOptions inter_only;
  inter_only.delta = 0.2;
  inter_only.constrain_attributes = false;
  FairKemenyResult r = FairKemenyAggregate(w, t, inter_only);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(IntersectionRankParity(r.ranking, t), 0.2 + 1e-9);
}

TEST(FairKemenyTest, CostNeverBelowUnconstrainedKemeny) {
  Rng rng(7);
  CandidateTable t = testing::CyclicTable(10, 2, 2);
  std::vector<Ranking> base;
  for (int i = 0; i < 7; ++i) base.push_back(testing::RandomRanking(10, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult unconstrained = KemenyAggregate(w);
  FairKemenyOptions options;
  options.delta = 0.1;
  FairKemenyResult fair = FairKemenyAggregate(w, t, options);
  ASSERT_TRUE(fair.feasible);
  EXPECT_GE(fair.cost, unconstrained.cost - 1e-9);
}

struct FairKemenyParam {
  int n;
  int d0, d1;
  double delta;
  uint64_t seed;
};

class FairKemenyRandomTest : public ::testing::TestWithParam<FairKemenyParam> {};

TEST_P(FairKemenyRandomTest, MatchesConstrainedBruteForce) {
  const FairKemenyParam& p = GetParam();
  Rng rng(p.seed);
  CandidateTable t = testing::CyclicTable(p.n, p.d0, p.d1);
  std::vector<Ranking> base;
  const int m = 3 + static_cast<int>(rng.NextUint64(5));
  for (int i = 0; i < m; ++i) base.push_back(testing::RandomRanking(p.n, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  bool feasible;
  const double expected = BruteForceFairKemeny(w, t, p.delta, &feasible);
  FairKemenyOptions options;
  options.delta = p.delta;
  FairKemenyResult r = FairKemenyAggregate(w, t, options);
  EXPECT_EQ(r.feasible, feasible) << "seed " << p.seed;
  if (feasible) {
    ASSERT_TRUE(r.optimal) << "seed " << p.seed;
    EXPECT_NEAR(r.cost, expected, 1e-7) << "seed " << p.seed;
    EXPECT_TRUE(SatisfiesManiRank(r.ranking, t, p.delta));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FairKemenyRandomTest,
    ::testing::Values(FairKemenyParam{6, 2, 2, 0.3, 1},
                      FairKemenyParam{6, 2, 2, 0.15, 2},
                      FairKemenyParam{7, 2, 2, 0.25, 3},
                      FairKemenyParam{8, 2, 2, 0.2, 4},
                      FairKemenyParam{8, 2, 2, 0.4, 5},
                      FairKemenyParam{6, 3, 2, 0.3, 6},
                      FairKemenyParam{8, 4, 2, 0.25, 7},
                      FairKemenyParam{7, 2, 2, 0.1, 8}));

}  // namespace
}  // namespace manirank
