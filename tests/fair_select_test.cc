// Constrained fair top-k selection tests: greedy repair against a
// brute-force oracle, the ILP fallback on instances where greedy
// provably fails, infeasibility proofs, and input validation. The
// brute-force oracle enumerates every size-k subset, so these tests pin
// the OPTIMAL cost, not just feasibility.

#include "core/fair_select.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "core/candidate_table.h"
#include "core/ranking.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

/// Builds a two-attribute table from explicit per-candidate values.
CandidateTable TwoAttrTable(const std::vector<AttributeValue>& x,
                            const std::vector<AttributeValue>& y) {
  Attribute ax;
  ax.name = "X";
  ax.values = {"x0", "x1", "x2"};
  Attribute ay;
  ay.name = "Y";
  ay.values = {"y0", "y1", "y2"};
  std::vector<std::vector<AttributeValue>> values;
  for (size_t c = 0; c < x.size(); ++c) values.push_back({x[c], y[c]});
  return CandidateTable({ax, ay}, std::move(values));
}

/// Brute-force oracle: minimum cost over all size-k subsets satisfying
/// every constraint, or -1 when infeasible. Exponential — keep n small.
long long BruteForceBestCost(const Ranking& consensus, int k,
                             const std::vector<SelectConstraint>& constraints) {
  const int n = consensus.size();
  long long best = -1;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    bool ok = true;
    for (const SelectConstraint& sc : constraints) {
      int count = 0;
      for (int c = 0; c < n; ++c) {
        if ((mask >> c & 1u) && sc.grouping->group_of[c] == sc.group) ++count;
      }
      if (count < sc.min_count || count > sc.max_count) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    long long cost = 0;
    for (int c = 0; c < n; ++c) {
      if (mask >> c & 1u) cost += consensus.PositionOf(c);
    }
    if (best < 0 || cost < best) best = cost;
  }
  return best;
}

/// Counts how many of `selected` fall in the constraint's target group.
int CountIn(const std::vector<CandidateId>& selected,
            const SelectConstraint& sc) {
  int count = 0;
  for (CandidateId c : selected) {
    if (sc.grouping->group_of[c] == sc.group) ++count;
  }
  return count;
}

TEST(FairSelectTest, NoConstraintsReturnsTopKPrefix) {
  std::vector<CandidateId> order = {3, 1, 4, 0, 2, 5};
  const Ranking consensus(std::move(order));
  const FairSelectResult result = FairTopKSelect(consensus, 3, {});
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.used_ilp);
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.selected, (std::vector<CandidateId>{3, 1, 4}));
  EXPECT_EQ(result.cost, 0 + 1 + 2);
}

TEST(FairSelectTest, MinimumConstraintPullsGroupMembersIn) {
  // X: candidates 0..5 alternate groups x0/x1 (0,2,4 -> x0; 1,3,5 -> x1).
  const CandidateTable table =
      TwoAttrTable({0, 1, 0, 1, 0, 1}, {0, 0, 0, 0, 0, 0});
  const Grouping& gx = table.attribute_grouping(0);
  // Consensus ranks all of x0 ahead of all of x1.
  const Ranking consensus(std::vector<CandidateId>{0, 2, 4, 1, 3, 5});
  // Force at least 2 of x1 into the top 3.
  const std::vector<SelectConstraint> constraints = {{&gx, 1, 2, 3}};
  const FairSelectResult result = FairTopKSelect(consensus, 3, constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.used_ilp);
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(CountIn(result.selected, constraints[0]), 2);
  EXPECT_EQ(result.cost, BruteForceBestCost(consensus, 3, constraints));
  // Selected candidates come back in consensus order.
  EXPECT_EQ(result.selected, (std::vector<CandidateId>{0, 1, 3}));
}

TEST(FairSelectTest, MaximumConstraintCapsGroupMembers) {
  const CandidateTable table =
      TwoAttrTable({0, 0, 0, 1, 1, 1}, {0, 0, 0, 0, 0, 0});
  const Grouping& gx = table.attribute_grouping(0);
  const Ranking consensus = Ranking::Identity(6);
  // At most 1 of x0 (candidates 0-2) in the top 4.
  const std::vector<SelectConstraint> constraints = {{&gx, 0, 0, 1}};
  const FairSelectResult result = FairTopKSelect(consensus, 4, constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(CountIn(result.selected, constraints[0]), 1);
  EXPECT_EQ(result.selected, (std::vector<CandidateId>{0, 3, 4, 5}));
  EXPECT_EQ(result.cost, BruteForceBestCost(consensus, 4, constraints));
}

TEST(FairSelectTest, GreedyMatchesBruteForceOnSingleGroupingSweep) {
  // Exhaustive small sweep: random tables + random single-grouping
  // constraints; greedy (when it answers) must equal the oracle cost.
  Rng rng(20220811);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextUint64(4));  // 5..8
    const CandidateTable table = testing::RandomTable(n, {3}, &rng);
    const Grouping& g = table.attribute_grouping(0);
    const Ranking consensus = testing::RandomRanking(n, &rng);
    const int k = 1 + static_cast<int>(rng.NextUint64(n));
    std::vector<SelectConstraint> constraints;
    for (int group = 0; group < g.num_groups(); ++group) {
      if (rng.NextUint64(2) == 0) continue;  // constrain ~half the groups
      const int size = g.group_size(group);
      const int min = static_cast<int>(rng.NextUint64(size + 1));
      const int max =
          min + static_cast<int>(rng.NextUint64(size - min + 1));
      constraints.push_back({&g, group, min, max});
    }
    const long long oracle = BruteForceBestCost(consensus, k, constraints);
    const FairSelectResult result = FairTopKSelect(consensus, k, constraints);
    if (oracle < 0) {
      EXPECT_FALSE(result.feasible) << "trial " << trial;
      continue;
    }
    ASSERT_TRUE(result.feasible) << "trial " << trial;
    EXPECT_TRUE(result.optimal) << "trial " << trial;
    EXPECT_EQ(result.cost, oracle) << "trial " << trial;
    EXPECT_EQ(static_cast<int>(result.selected.size()), k);
    for (const SelectConstraint& sc : constraints) {
      const int count = CountIn(result.selected, sc);
      EXPECT_GE(count, sc.min_count) << "trial " << trial;
      EXPECT_LE(count, sc.max_count) << "trial " << trial;
    }
  }
}

TEST(FairSelectTest, IlpFallbackSolvesWhereGreedyCommitsWrong) {
  // Crafted cross-grouping trap: greedy's phase A takes candidate 0
  // (cheapest way to cover X.x0's minimum), which exhausts Y.y0's
  // maximum — after that every X.x1 member is blocked (all are y0) and
  // the X.x1 minimum can never be met. The instance IS feasible: skip
  // candidate 0 and take {1, 2}.
  const CandidateTable table =
      TwoAttrTable({0, 1, 0, 1, 0, 1}, {0, 0, 1, 0, 1, 0});
  const Grouping& gx = table.attribute_grouping(0);
  const Grouping& gy = table.attribute_grouping(1);
  const Ranking consensus = Ranking::Identity(6);
  const std::vector<SelectConstraint> constraints = {
      {&gx, 0, 1, 6},  // at least one x0
      {&gx, 1, 1, 6},  // at least one x1
      {&gy, 0, 0, 1},  // at most one y0
  };
  const FairSelectResult result = FairTopKSelect(consensus, 2, constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.used_ilp);
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.selected, (std::vector<CandidateId>{1, 2}));
  EXPECT_EQ(result.cost, BruteForceBestCost(consensus, 2, constraints));
}

TEST(FairSelectTest, CrossGroupingGreedySuccessIsServedNonOptimal) {
  // Constraints on two groupings that greedy CAN satisfy: the result is
  // served but carries no optimality certificate.
  const CandidateTable table =
      TwoAttrTable({0, 1, 0, 1, 0, 1}, {0, 1, 0, 1, 0, 1});
  const Grouping& gx = table.attribute_grouping(0);
  const Grouping& gy = table.attribute_grouping(1);
  const Ranking consensus = Ranking::Identity(6);
  const std::vector<SelectConstraint> constraints = {
      {&gx, 0, 1, 6},
      {&gy, 1, 1, 6},
  };
  const FairSelectResult result = FairTopKSelect(consensus, 3, constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.used_ilp);
  EXPECT_FALSE(result.optimal);
  EXPECT_EQ(static_cast<int>(result.selected.size()), 3);
}

TEST(FairSelectTest, ProvenInfeasibilityIsOptimal) {
  // x0 has 2 members but the minimum demands 3 of them in the slate.
  const CandidateTable table =
      TwoAttrTable({0, 0, 1, 1, 1, 1}, {0, 0, 0, 0, 0, 0});
  const Grouping& gx = table.attribute_grouping(0);
  const Ranking consensus = Ranking::Identity(6);
  const std::vector<SelectConstraint> constraints = {{&gx, 0, 3, 6}};
  const FairSelectResult result = FairTopKSelect(consensus, 4, constraints);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.selected.empty());
  // Infeasibility came from the ILP with a proof (kInfeasible), so the
  // verdict is cacheable.
  EXPECT_TRUE(result.used_ilp);
  EXPECT_TRUE(result.optimal);
}

TEST(FairSelectTest, ConflictingMinMaxAcrossGroupingsIsInfeasible) {
  // Every x1 member is y0; require an x1 but forbid any y0. Group
  // indices are dense in first-appearance order: candidate 0 is y1, so
  // the y0 group is gy group 1.
  const CandidateTable table =
      TwoAttrTable({0, 1, 0, 1, 0, 1}, {1, 0, 1, 0, 1, 0});
  const Grouping& gx = table.attribute_grouping(0);
  const Grouping& gy = table.attribute_grouping(1);
  const Ranking consensus = Ranking::Identity(6);
  const std::vector<SelectConstraint> constraints = {
      {&gx, 1, 1, 6},
      {&gy, 1, 0, 0},
  };
  const FairSelectResult result = FairTopKSelect(consensus, 2, constraints);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(BruteForceBestCost(consensus, 2, constraints), -1);
}

TEST(FairSelectTest, KEdgeCases) {
  const CandidateTable table =
      TwoAttrTable({0, 1, 0, 1}, {0, 0, 0, 0});
  const Grouping& gx = table.attribute_grouping(0);
  const Ranking consensus = Ranking::Identity(4);
  // k == n: the slate is the whole domain (constraints permitting).
  const FairSelectResult all =
      FairTopKSelect(consensus, 4, {{&gx, 0, 2, 2}});
  ASSERT_TRUE(all.feasible);
  EXPECT_EQ(all.selected, (std::vector<CandidateId>{0, 1, 2, 3}));
  // k == 1.
  const FairSelectResult one =
      FairTopKSelect(consensus, 1, {{&gx, 1, 1, 1}});
  ASSERT_TRUE(one.feasible);
  EXPECT_EQ(one.selected, (std::vector<CandidateId>{1}));
}

TEST(FairSelectTest, RejectsInvalidInputs) {
  const CandidateTable table = TwoAttrTable({0, 1, 0, 1}, {0, 0, 0, 0});
  const Grouping& gx = table.attribute_grouping(0);
  const Ranking consensus = Ranking::Identity(4);
  EXPECT_THROW(FairTopKSelect(consensus, 0, {}), std::invalid_argument);
  EXPECT_THROW(FairTopKSelect(consensus, 5, {}), std::invalid_argument);
  EXPECT_THROW(FairTopKSelect(consensus, -1, {}), std::invalid_argument);
  EXPECT_THROW(FairTopKSelect(consensus, 2, {{nullptr, 0, 0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(FairTopKSelect(consensus, 2, {{&gx, 2, 0, 1}}),
               std::invalid_argument);  // group out of range
  EXPECT_THROW(FairTopKSelect(consensus, 2, {{&gx, -1, 0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(FairTopKSelect(consensus, 2, {{&gx, 0, 2, 1}}),
               std::invalid_argument);  // min > max
  EXPECT_THROW(FairTopKSelect(consensus, 2, {{&gx, 0, -1, 1}}),
               std::invalid_argument);
  // Grouping over a different domain size than the consensus.
  const Ranking other = Ranking::Identity(6);
  EXPECT_THROW(FairTopKSelect(other, 2, {{&gx, 0, 0, 1}}),
               std::invalid_argument);
}

TEST(FairSelectTest, DeterministicAcrossCalls) {
  Rng rng(7);
  const CandidateTable table = testing::RandomTable(8, {2, 2}, &rng);
  const Grouping& gx = table.attribute_grouping(0);
  const Grouping& gy = table.attribute_grouping(1);
  const Ranking consensus = testing::RandomRanking(8, &rng);
  const std::vector<SelectConstraint> constraints = {
      {&gx, 0, 1, 3},
      {&gy, 0, 0, 2},
  };
  const FairSelectResult a = FairTopKSelect(consensus, 4, constraints);
  const FairSelectResult b = FairTopKSelect(consensus, 4, constraints);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.used_ilp, b.used_ilp);
  EXPECT_EQ(a.optimal, b.optimal);
}

}  // namespace
}  // namespace manirank
