// Tests for the paper's §II-B "Customizing Group Fairness" extensions:
// subset-of-attribute intersections and extra criteria threaded through
// Make-MR-Fair and Fair-Kemeny.

#include <gtest/gtest.h>

#include "core/fair_kemeny.h"
#include "core/fairness_metrics.h"
#include "core/make_mr_fair.h"
#include "mallows/modal_designer.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

/// Three binary attributes, 2 candidates per cell -> 16 candidates.
CandidateTable ThreeAttributeTable() {
  std::vector<Attribute> attrs = {
      {"A", {"a0", "a1"}}, {"B", {"b0", "b1"}}, {"C", {"c0", "c1"}}};
  std::vector<std::vector<AttributeValue>> values;
  for (AttributeValue a = 0; a < 2; ++a) {
    for (AttributeValue b = 0; b < 2; ++b) {
      for (AttributeValue c = 0; c < 2; ++c) {
        values.push_back({a, b, c});
        values.push_back({a, b, c});
      }
    }
  }
  return CandidateTable(std::move(attrs), std::move(values));
}

TEST(SubsetIntersectionTest, BuildsPairwiseSubsets) {
  CandidateTable t = ThreeAttributeTable();
  Grouping ab = t.BuildSubsetIntersection({0, 1});
  EXPECT_EQ(ab.num_groups(), 4);
  EXPECT_EQ(ab.name, "Intersection(A, B)");
  for (int g = 0; g < ab.num_groups(); ++g) EXPECT_EQ(ab.group_size(g), 4);
  // Consistency: same (A, B) values iff same subset group.
  for (CandidateId x = 0; x < t.num_candidates(); ++x) {
    for (CandidateId y = 0; y < t.num_candidates(); ++y) {
      const bool same_values =
          t.value(x, 0) == t.value(y, 0) && t.value(x, 1) == t.value(y, 1);
      EXPECT_EQ(ab.group_of[x] == ab.group_of[y], same_values);
    }
  }
}

TEST(SubsetIntersectionTest, SingleAttributeSubsetEqualsAttributeGrouping) {
  CandidateTable t = ThreeAttributeTable();
  Grouping sub = t.BuildSubsetIntersection({2});
  const Grouping& attr = t.attribute_grouping(2);
  ASSERT_EQ(sub.num_groups(), attr.num_groups());
  Rng rng(1);
  Ranking r = testing::RandomRanking(t.num_candidates(), &rng);
  EXPECT_DOUBLE_EQ(RankParity(r, sub), RankParity(r, attr));
}

TEST(SubsetIntersectionTest, FullSubsetEqualsIntersectionGrouping) {
  CandidateTable t = ThreeAttributeTable();
  Grouping sub = t.BuildSubsetIntersection({0, 1, 2});
  Rng rng(2);
  Ranking r = testing::RandomRanking(t.num_candidates(), &rng);
  EXPECT_DOUBLE_EQ(RankParity(r, sub),
                   RankParity(r, t.intersection_grouping()));
}

TEST(CriteriaTest, ManiRankCriteriaMatchDefinition7) {
  CandidateTable t = ThreeAttributeTable();
  std::vector<FairnessCriterion> criteria = ManiRankCriteria(t, 0.1);
  ASSERT_EQ(criteria.size(), 4u);  // 3 attributes + intersection
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Ranking r = testing::RandomRanking(t.num_candidates(), &rng);
    EXPECT_EQ(SatisfiesCriteria(r, criteria), SatisfiesManiRank(r, t, 0.1));
  }
}

TEST(CriteriaTest, MakeMrFairEnforcesSubsetCriterion) {
  CandidateTable t = ThreeAttributeTable();
  Grouping ab = t.BuildSubsetIntersection({0, 1});
  Rng rng(4);
  Ranking start = testing::RandomRanking(t.num_candidates(), &rng);

  MakeMrFairOptions options;
  options.delta = 0.15;
  options.extra_criteria = {{&ab, 0.1}};
  MakeMrFairResult result = MakeMrFair(start, t, options);
  ASSERT_TRUE(result.satisfied);
  EXPECT_TRUE(SatisfiesManiRank(result.ranking, t, 0.15));
  EXPECT_LE(RankParity(result.ranking, ab), 0.1 + 1e-9);
}

TEST(CriteriaTest, SubsetCriterionIsNotImpliedByStandardSet) {
  // Find a repaired ranking that satisfies the standard MANI-Rank criteria
  // at Delta = 0.2 but violates a tight A x B subset criterion at 0.05 —
  // evidence that the paper's note "it must be constrained explicitly"
  // holds for subset intersections too.
  CandidateTable t = ThreeAttributeTable();
  Grouping ab = t.BuildSubsetIntersection({0, 1});
  Rng rng(5);
  bool found_violation = false;
  for (int trial = 0; trial < 50 && !found_violation; ++trial) {
    Ranking start = testing::RandomRanking(t.num_candidates(), &rng);
    MakeMrFairOptions options;
    options.delta = 0.2;
    MakeMrFairResult result = MakeMrFair(start, t, options);
    if (result.satisfied && RankParity(result.ranking, ab) > 0.05 + 1e-9) {
      found_violation = true;
    }
  }
  EXPECT_TRUE(found_violation);
}

/// Brute-force constrained Kemeny optimum over explicit criteria; n <= 8.
double BruteForceCriteriaKemeny(const PrecedenceMatrix& w,
                                const std::vector<FairnessCriterion>& criteria,
                                bool* feasible) {
  const int n = w.size();
  std::vector<CandidateId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  *feasible = false;
  do {
    Ranking r{std::vector<CandidateId>(perm)};
    if (!SatisfiesCriteria(r, criteria)) continue;
    *feasible = true;
    best = std::min(best, w.KemenyCost(r));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(CriteriaTest, FairKemenyEnforcesSubsetCriterion) {
  // Three binary attributes over 8 candidates; the full (singleton-cell)
  // intersection is unconstrained — only the attributes and the A x B
  // subset intersection carry thresholds. The ILP must match the filtered
  // brute-force optimum.
  std::vector<Attribute> attrs = {
      {"A", {"a0", "a1"}}, {"B", {"b0", "b1"}}, {"C", {"c0", "c1"}}};
  std::vector<std::vector<AttributeValue>> values = {
      {0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {0, 1, 1},
      {1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1},
  };
  CandidateTable t(std::move(attrs), std::move(values));
  Grouping ab = t.BuildSubsetIntersection({0, 1});

  Rng rng(6);
  std::vector<Ranking> base;
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(8, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);

  FairKemenyOptions options;
  options.delta = 0.4;
  options.constrain_intersection = false;  // singleton cells: IRP is fixed
  options.extra_criteria = {{&ab, 0.3}};
  options.time_limit_seconds = 60.0;
  FairKemenyResult result = FairKemenyAggregate(w, t, options);

  std::vector<FairnessCriterion> criteria = {{&t.attribute_grouping(0), 0.4},
                                             {&t.attribute_grouping(1), 0.4},
                                             {&t.attribute_grouping(2), 0.4},
                                             {&ab, 0.3}};
  bool feasible;
  const double expected = BruteForceCriteriaKemeny(w, criteria, &feasible);
  ASSERT_EQ(result.feasible, feasible);
  if (feasible) {
    EXPECT_NEAR(result.cost, expected, 1e-7);
    EXPECT_LE(RankParity(result.ranking, ab), 0.3 + 1e-9);
    EXPECT_TRUE(SatisfiesCriteria(result.ranking, criteria));
  }
}

TEST(CriteriaTest, ExtraCriteriaRespectMainCost) {
  // Adding a redundant criterion (threshold 1.0) must not change the
  // Fair-Kemeny optimum.
  CandidateTable t = testing::CyclicTable(8, 2, 2);
  Grouping ab = t.BuildSubsetIntersection({0, 1});
  Rng rng(7);
  std::vector<Ranking> base;
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(8, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);

  FairKemenyOptions plain;
  plain.delta = 0.3;
  FairKemenyResult without = FairKemenyAggregate(w, t, plain);

  FairKemenyOptions with = plain;
  with.extra_criteria = {{&ab, 1.0}};
  FairKemenyResult with_redundant = FairKemenyAggregate(w, t, with);

  ASSERT_TRUE(without.feasible);
  ASSERT_TRUE(with_redundant.feasible);
  EXPECT_DOUBLE_EQ(without.cost, with_redundant.cost);
}

}  // namespace
}  // namespace manirank
