#include "core/fairness_metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

/// O(n^2) FPR reference: count favored mixed pairs directly from the
/// definition (Definition 4).
std::vector<double> FprBruteForce(const Ranking& r, const Grouping& g) {
  const int n = r.size();
  std::vector<double> fpr(g.num_groups(), 0.5);
  for (int gi = 0; gi < g.num_groups(); ++gi) {
    int64_t favored = 0;
    for (CandidateId a : g.members[gi]) {
      for (CandidateId b = 0; b < n; ++b) {
        if (g.group_of[b] != gi && r.Prefers(a, b)) ++favored;
      }
    }
    const int64_t denom = MixedPairs(g.group_size(gi), n);
    if (denom > 0) fpr[gi] = static_cast<double>(favored) / denom;
  }
  return fpr;
}

CandidateTable BinaryTable(int n) {
  // Candidates 0..n/2-1 in group "a0", the rest in "a1".
  std::vector<Attribute> attrs = {{"G", {"a0", "a1"}}};
  std::vector<std::vector<AttributeValue>> values(n, std::vector<AttributeValue>(1));
  for (int c = 0; c < n; ++c) values[c][0] = c < n / 2 ? 0 : 1;
  return CandidateTable(std::move(attrs), std::move(values));
}

TEST(FprTest, GroupAtTopHasFprOne) {
  CandidateTable t = BinaryTable(8);  // group 0 = candidates 0..3
  Ranking r = Ranking::Identity(8);   // group 0 occupies the top half
  std::vector<double> fpr = GroupFpr(r, t.attribute_grouping(0));
  EXPECT_DOUBLE_EQ(fpr[0], 1.0);
  EXPECT_DOUBLE_EQ(fpr[1], 0.0);
}

TEST(FprTest, GroupAtBottomHasFprZero) {
  CandidateTable t = BinaryTable(8);
  Ranking r = Ranking::Identity(8).Reversed();
  std::vector<double> fpr = GroupFpr(r, t.attribute_grouping(0));
  EXPECT_DOUBLE_EQ(fpr[0], 0.0);
  EXPECT_DOUBLE_EQ(fpr[1], 1.0);
}

TEST(FprTest, PerfectlyInterleavedIsNearHalf) {
  // Alternating groups: 0,4,1,5,2,6,3,7 -> FPR close to 0.5 each.
  CandidateTable t = BinaryTable(8);
  Ranking r({0, 4, 1, 5, 2, 6, 3, 7});
  std::vector<double> fpr = GroupFpr(r, t.attribute_grouping(0));
  EXPECT_NEAR(fpr[0], 0.5, 0.2);
  EXPECT_NEAR(fpr[1], 0.5, 0.2);
  EXPECT_NEAR(fpr[0] + fpr[1], 1.0, 1e-12);  // binary complement
}

TEST(FprTest, BinaryGroupsAreComplementary) {
  // For two groups, every mixed pair favors exactly one of them and the
  // denominators coincide, so FPR_0 + FPR_1 == 1.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    CandidateTable t = BinaryTable(10);
    Ranking r = testing::RandomRanking(10, &rng);
    std::vector<double> fpr = GroupFpr(r, t.attribute_grouping(0));
    EXPECT_NEAR(fpr[0] + fpr[1], 1.0, 1e-12);
  }
}

TEST(FprTest, SingleGroupIsVacuouslyFair) {
  std::vector<Attribute> attrs = {{"G", {"only"}}};
  std::vector<std::vector<AttributeValue>> values(5, {0});
  CandidateTable t(std::move(attrs), std::move(values));
  Ranking r = Ranking::Identity(5);
  std::vector<double> fpr = GroupFpr(r, t.attribute_grouping(0));
  ASSERT_EQ(fpr.size(), 1u);
  EXPECT_DOUBLE_EQ(fpr[0], 0.5);
  EXPECT_DOUBLE_EQ(RankParity(r, t.attribute_grouping(0)), 0.0);
}

TEST(ArpTest, ExtremesReachOne) {
  CandidateTable t = BinaryTable(6);
  EXPECT_DOUBLE_EQ(RankParity(Ranking::Identity(6), t.attribute_grouping(0)),
                   1.0);
}

TEST(ArpTest, MatchesMaxPairwiseGap) {
  Rng rng(11);
  CandidateTable t = testing::CyclicTable(24, 3, 2);
  Ranking r = testing::RandomRanking(24, &rng);
  const Grouping& g = t.attribute_grouping(0);
  std::vector<double> fpr = GroupFpr(r, g);
  double max_gap = 0.0;
  for (size_t i = 0; i < fpr.size(); ++i) {
    for (size_t j = i + 1; j < fpr.size(); ++j) {
      max_gap = std::max(max_gap, std::abs(fpr[i] - fpr[j]));
    }
  }
  EXPECT_DOUBLE_EQ(RankParity(r, g), max_gap);
}

TEST(ManiRankTest, UniformThresholds) {
  ManiRankThresholds t = ManiRankThresholds::Uniform(3, 0.1);
  EXPECT_EQ(t.attribute_delta.size(), 3u);
  EXPECT_DOUBLE_EQ(t.attribute_delta[1], 0.1);
  EXPECT_DOUBLE_EQ(t.intersection_delta, 0.1);
}

TEST(ManiRankTest, SatisfiedAtDeltaOneAlways) {
  Rng rng(7);
  CandidateTable t = testing::CyclicTable(20, 2, 3);
  Ranking r = testing::RandomRanking(20, &rng);
  EXPECT_TRUE(SatisfiesManiRank(r, t, 1.0));
}

TEST(ManiRankTest, ViolatedByFullySegregatedRanking) {
  CandidateTable t = BinaryTable(10);
  EXPECT_FALSE(SatisfiesManiRank(Ranking::Identity(10), t, 0.5));
}

TEST(ManiRankTest, PerAttributeThresholds) {
  CandidateTable t = testing::CyclicTable(12, 2, 2);
  Ranking r = Ranking::Identity(12);
  FairnessReport report = EvaluateFairness(r, t);
  // Pick thresholds exactly at the observed parities: satisfied.
  ManiRankThresholds exact;
  exact.attribute_delta = {report.parity[0], report.parity[1]};
  exact.intersection_delta = report.parity[2];
  EXPECT_TRUE(SatisfiesManiRank(r, t, exact));
  // Tighten one attribute below its parity: violated (if parity > 0).
  if (report.parity[0] > 0.01) {
    exact.attribute_delta[0] = report.parity[0] - 0.01;
    EXPECT_FALSE(SatisfiesManiRank(r, t, exact));
  }
}

TEST(FairnessReportTest, ConvenienceAccessorsAgree) {
  Rng rng(13);
  CandidateTable t = testing::CyclicTable(18, 3, 3);
  Ranking r = testing::RandomRanking(18, &rng);
  FairnessReport report = EvaluateFairness(r, t);
  ASSERT_EQ(report.parity.size(), 3u);
  EXPECT_DOUBLE_EQ(report.parity[0], AttributeRankParity(r, t, 0));
  EXPECT_DOUBLE_EQ(report.parity[1], AttributeRankParity(r, t, 1));
  EXPECT_DOUBLE_EQ(report.parity[2], IntersectionRankParity(r, t));
  EXPECT_DOUBLE_EQ(report.MaxParity(),
                   std::max({report.parity[0], report.parity[1],
                             report.parity[2]}));
}

struct FprPropertyParam {
  int n;
  int d0, d1;
  uint64_t seed;
};

class FprPropertyTest : public ::testing::TestWithParam<FprPropertyParam> {};

TEST_P(FprPropertyTest, FastPassMatchesBruteForce) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  CandidateTable t = testing::RandomTable(p.n, {p.d0, p.d1}, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    Ranking r = testing::RandomRanking(p.n, &rng);
    for (const Grouping* g : t.constrained_groupings()) {
      std::vector<double> fast = GroupFpr(r, *g);
      std::vector<double> slow = FprBruteForce(r, *g);
      ASSERT_EQ(fast.size(), slow.size());
      for (size_t i = 0; i < fast.size(); ++i) {
        ASSERT_NEAR(fast[i], slow[i], 1e-12);
      }
    }
  }
}

TEST_P(FprPropertyTest, FprWithinUnitInterval) {
  const auto& p = GetParam();
  Rng rng(p.seed + 1);
  CandidateTable t = testing::RandomTable(p.n, {p.d0, p.d1}, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    Ranking r = testing::RandomRanking(p.n, &rng);
    for (const Grouping* g : t.constrained_groupings()) {
      for (double f : GroupFpr(r, *g)) {
        ASSERT_GE(f, 0.0);
        ASSERT_LE(f, 1.0);
      }
    }
  }
}

TEST_P(FprPropertyTest, FavoredPairsSumToMixedPairCount) {
  // Every mixed pair is favored for exactly one of its two groups, so the
  // favored counts of a grouping sum to its total number of mixed pairs.
  const auto& p = GetParam();
  Rng rng(p.seed + 2);
  CandidateTable t = testing::RandomTable(p.n, {p.d0, p.d1}, &rng);
  Ranking r = testing::RandomRanking(p.n, &rng);
  for (const Grouping* g : t.constrained_groupings()) {
    std::vector<int64_t> favored = GroupFavoredPairs(r, *g);
    int64_t total_favored = std::accumulate(favored.begin(), favored.end(),
                                            static_cast<int64_t>(0));
    // Total mixed pairs: all pairs minus the same-group pairs.
    int64_t same_group = 0;
    for (int gi = 0; gi < g->num_groups(); ++gi) {
      same_group += TotalPairs(g->group_size(gi));
    }
    EXPECT_EQ(total_favored, TotalPairs(p.n) - same_group) << g->name;
  }
}

TEST_P(FprPropertyTest, ReversalMirrorsFprAroundHalf) {
  // Reversing the ranking swaps winners and losers of every mixed pair:
  // FPR_rev = 1 - FPR (for groups with at least one mixed pair).
  const auto& p = GetParam();
  Rng rng(p.seed + 3);
  CandidateTable t = testing::RandomTable(p.n, {p.d0, p.d1}, &rng);
  Ranking r = testing::RandomRanking(p.n, &rng);
  Ranking rev = r.Reversed();
  for (const Grouping* g : t.constrained_groupings()) {
    std::vector<double> fpr = GroupFpr(r, *g);
    std::vector<double> fpr_rev = GroupFpr(rev, *g);
    for (size_t i = 0; i < fpr.size(); ++i) {
      if (g->group_size(static_cast<int>(i)) < p.n) {
        ASSERT_NEAR(fpr_rev[i], 1.0 - fpr[i], 1e-12);
      }
    }
    // Parity is invariant under reversal.
    ASSERT_NEAR(RankParityFromFpr(fpr), RankParityFromFpr(fpr_rev), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FprPropertyTest,
    ::testing::Values(FprPropertyParam{6, 2, 2, 100},
                      FprPropertyParam{15, 3, 2, 200},
                      FprPropertyParam{30, 5, 3, 300},
                      FprPropertyParam{45, 5, 3, 400},
                      FprPropertyParam{12, 4, 3, 500}));

}  // namespace
}  // namespace manirank
