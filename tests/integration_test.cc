// End-to-end scenarios mirroring the paper's experimental pipeline at
// test-friendly scale: dataset -> base rankings -> consensus methods ->
// fairness + preference metrics.

#include <gtest/gtest.h>

#include "manirank.h"
#include "test_util.h"

namespace manirank {
namespace {

TEST(IntegrationTest, MiniFigure4Pipeline) {
  // Small Low-Fair-style dataset; verify the Fig. 4 qualitative result:
  // all MFCR methods satisfy Delta, Kemeny does not, Fair-Kemeny has the
  // lowest PD loss among the fair methods.
  ModalDesignSpec spec;
  spec.attributes = {{"Race", {"r0", "r1"}}, {"Gender", {"g0", "g1"}}};
  spec.cell_counts = {3, 3, 3, 3};  // n = 12: exactly solvable by the ILP
  spec.attribute_arp_target = {0.7, 0.7};
  spec.irp_target = 0.9;
  spec.tolerance = 0.05;
  ModalDesignResult design = DesignModalRanking(spec);
  ASSERT_TRUE(design.converged);

  MallowsModel model(design.modal, /*theta=*/0.6);
  std::vector<Ranking> base = model.SampleMany(40, /*seed=*/5);
  ConsensusContext ctx(base, design.table);
  ConsensusOptions options;
  options.delta = 0.1;
  options.time_limit_seconds = 60.0;

  ConsensusOutput kemeny = FindMethod("B1")->run(ctx, options);
  EXPECT_FALSE(SatisfiesManiRank(kemeny.consensus, design.table, 0.1))
      << "a Low-Fair profile should yield an unfair Kemeny consensus";

  double fair_kemeny_loss = -1.0;
  for (const char* id : {"A1", "A2", "A3", "A4"}) {
    ConsensusOutput out = FindMethod(id)->run(ctx, options);
    EXPECT_TRUE(out.satisfied) << id;
    EXPECT_TRUE(SatisfiesManiRank(out.consensus, design.table, 0.1)) << id;
    const double loss = PdLoss(base, out.consensus);
    if (std::string(id) == "A1") {
      fair_kemeny_loss = loss;
    } else {
      EXPECT_GE(loss, fair_kemeny_loss - 1e-9) << id;
    }
    // Price of fairness is non-negative against the Kemeny consensus.
    EXPECT_GE(PriceOfFairness(base, out.consensus, kemeny.consensus), -1e-9);
  }
}

TEST(IntegrationTest, DeltaSweepPriceOfFairnessDecreases) {
  // Fig. 5 (right): PoF shrinks as Delta loosens.
  ModalDesignSpec spec;
  spec.attributes = {{"A", {"a0", "a1"}}, {"B", {"b0", "b1"}}};
  spec.cell_counts = {5, 5, 5, 5};
  spec.attribute_arp_target = {0.6, 0.6};
  spec.irp_target = 0.8;
  spec.tolerance = 0.05;
  ModalDesignResult design = DesignModalRanking(spec);
  MallowsModel model(design.modal, 0.6);
  std::vector<Ranking> base = model.SampleMany(30, 9);
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  Ranking unfair = CopelandAggregate(w);

  double prev_pof = 1e9;
  for (double delta : {0.1, 0.3, 0.5}) {
    MakeMrFairOptions options;
    options.delta = delta;
    FairAggregateResult r = FairCopeland(w, design.table, options);
    ASSERT_TRUE(r.satisfied) << "delta " << delta;
    const double pof = PriceOfFairness(base, r.fair_consensus, unfair);
    EXPECT_GE(pof, -1e-9);
    EXPECT_LE(pof, prev_pof + 1e-9) << "PoF should not grow as Delta loosens";
    prev_pof = pof;
  }
}

TEST(IntegrationTest, ExamCaseStudyMatchesTableIVShape) {
  // §IV-F at full scale: the Kemeny consensus inherits the base rankings'
  // bias; all four MFCR methods de-bias to Delta = .05.
  ExamDataset data = GenerateExamDataset();
  ConsensusContext ctx(data.base_rankings, data.table);
  ConsensusOptions options;
  options.delta = 0.05;
  // n = 200 is far beyond the bundled ILP: B1 falls back to the
  // locally-optimised consensus under this budget (see DESIGN.md #1).
  options.time_limit_seconds = 10.0;

  ConsensusOutput kemeny = FindMethod("B1")->run(ctx, options);
  FairnessReport kemeny_report = EvaluateFairness(kemeny.consensus, data.table);
  EXPECT_GT(kemeny_report.MaxParity(), 0.2)
      << "biases in the base rankings must be reflected in plain Kemeny";

  for (const char* id : {"A2", "A3", "A4"}) {
    ConsensusOutput out = FindMethod(id)->run(ctx, options);
    FairnessReport report = EvaluateFairness(out.consensus, data.table);
    EXPECT_TRUE(out.satisfied) << id;
    for (double parity : report.parity) {
      EXPECT_LE(parity, 0.05 + 1e-9) << id;
    }
  }
}

TEST(IntegrationTest, CsRankingsCaseStudyDebiases) {
  // Appendix Table V at full scale with the polynomial methods.
  CsRankingsDataset data = GenerateCsRankingsDataset();
  PrecedenceMatrix w = PrecedenceMatrix::Build(data.yearly_rankings);
  KemenyResult kemeny = KemenyAggregate(w);
  FairnessReport before = EvaluateFairness(kemeny.ranking, data.table);
  EXPECT_GT(before.MaxParity(), 0.3);

  MakeMrFairOptions options;
  options.delta = 0.05;
  for (auto result :
       {FairSchulze(w, data.table, options), FairCopeland(w, data.table, options),
        FairBorda(data.yearly_rankings, data.table, options)}) {
    EXPECT_TRUE(result.satisfied);
    FairnessReport after = EvaluateFairness(result.fair_consensus, data.table);
    EXPECT_LE(after.MaxParity(), 0.05 + 1e-9);
    // Fair consensus still reflects the profile better than chance:
    // PD loss well below the 0.5 of a random permutation.
    EXPECT_LT(PdLoss(data.yearly_rankings, result.fair_consensus), 0.35);
  }
}

TEST(IntegrationTest, CsvPersistenceRoundTripsAStudy) {
  // Export a dataset and its rankings, re-import, and re-run a method:
  // identical consensus.
  ExamDataset data = GenerateExamDataset({60, 3});
  std::ostringstream table_os, rankings_os;
  WriteCandidateTableCsv(table_os, data.table);
  WriteRankingsCsv(rankings_os, data.base_rankings);
  std::istringstream table_is(table_os.str()), rankings_is(rankings_os.str());
  CandidateTable table = ReadCandidateTableCsv(table_is);
  std::vector<Ranking> base = ReadRankingsCsv(rankings_is);

  MakeMrFairOptions options;
  options.delta = 0.1;
  FairAggregateResult from_disk = FairBorda(base, table, options);
  FairAggregateResult original = FairBorda(data.base_rankings, data.table, options);
  EXPECT_EQ(from_disk.fair_consensus, original.fair_consensus);
}

TEST(IntegrationTest, ThresholdCustomisationEndToEnd) {
  // §II-B customisation: loose on one attribute, tight on the other.
  ModalDesignSpec spec;
  spec.attributes = {{"A", {"a0", "a1"}}, {"B", {"b0", "b1"}}};
  spec.cell_counts = {8, 8, 8, 8};
  spec.attribute_arp_target = {0.6, 0.6};
  spec.irp_target = 0.7;
  spec.tolerance = 0.05;
  ModalDesignResult design = DesignModalRanking(spec);
  MallowsModel model(design.modal, 0.8);
  std::vector<Ranking> base = model.SampleMany(25, 3);
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);

  MakeMrFairOptions options;
  ManiRankThresholds thresholds;
  thresholds.attribute_delta = {0.05, 0.4};
  thresholds.intersection_delta = 0.4;
  options.thresholds = thresholds;
  FairAggregateResult r = FairCopeland(w, design.table, options);
  ASSERT_TRUE(r.satisfied);
  EXPECT_LE(AttributeRankParity(r.fair_consensus, design.table, 0), 0.05 + 1e-9);
  EXPECT_LE(AttributeRankParity(r.fair_consensus, design.table, 1), 0.4 + 1e-9);
  EXPECT_LE(IntersectionRankParity(r.fair_consensus, design.table), 0.4 + 1e-9);
}

}  // namespace
}  // namespace manirank
