#include "core/kemeny.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "mallows/mallows.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

TEST(KemenyTest, UnanimousProfileUsesFastPath) {
  Ranking shared({3, 0, 2, 1});
  std::vector<Ranking> base(4, shared);
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult r = KemenyAggregate(w);
  EXPECT_TRUE(r.optimal);
  EXPECT_TRUE(r.used_fast_path);
  EXPECT_EQ(r.ranking, shared);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(KemenyTest, CondorcetCycleForcesIlp) {
  // 3-cycle: 0>1>2, 1>2>0, 2>0>1.
  std::vector<Ranking> base = {Ranking({0, 1, 2}), Ranking({1, 2, 0}),
                               Ranking({2, 0, 1})};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult r = KemenyAggregate(w);
  EXPECT_TRUE(r.optimal);
  EXPECT_FALSE(r.used_fast_path);
  // Any ranking disagrees with exactly 3 pairs (1 per ranking + 1 extra).
  EXPECT_DOUBLE_EQ(r.cost, BruteForceKemeny(w).cost);
}

TEST(KemenyTest, SingleCandidateAndPair) {
  std::vector<Ranking> one = {Ranking::Identity(1)};
  EXPECT_EQ(KemenyAggregate(PrecedenceMatrix::Build(one)).ranking.size(), 1);
  std::vector<Ranking> pair = {Ranking({1, 0}), Ranking({1, 0}),
                               Ranking({0, 1})};
  KemenyResult r = KemenyAggregate(PrecedenceMatrix::Build(pair));
  EXPECT_EQ(r.ranking, Ranking({1, 0}));  // majority
}

TEST(KemenyTest, TransitiveFastPathMatchesMajorityDigraph) {
  Rng rng(61);
  // Strongly concentrated Mallows profile: majority digraph acyclic with
  // overwhelming probability.
  MallowsModel model(testing::RandomRanking(30, &rng), /*theta=*/2.0);
  std::vector<Ranking> base = model.SampleMany(51, /*seed=*/1);
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  Ranking fast;
  ASSERT_TRUE(TryTransitiveKemeny(w, &fast));
  // Fast-path order respects every strict pairwise majority.
  for (CandidateId a = 0; a < 30; ++a) {
    for (CandidateId b = 0; b < 30; ++b) {
      if (a != b && w.PrefersCount(a, b) > w.PrefersCount(b, a)) {
        EXPECT_TRUE(fast.Prefers(a, b));
      }
    }
  }
  EXPECT_DOUBLE_EQ(w.KemenyCost(fast), w.LowerBound());
}

TEST(KemenyTest, RecoversMallowsModalRanking) {
  // The Kemeny consensus is the MLE of the Mallows modal ranking; with
  // many concentrated samples it should recover it exactly.
  Rng rng(71);
  Ranking modal = testing::RandomRanking(15, &rng);
  MallowsModel model(modal, /*theta=*/1.5);
  std::vector<Ranking> base = model.SampleMany(201, /*seed=*/3);
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult r = KemenyAggregate(w);
  ASSERT_TRUE(r.optimal);
  EXPECT_EQ(r.ranking, modal);
}

TEST(KemenyTest, BruteForceMatchesManualTinyCase) {
  std::vector<Ranking> base = {Ranking({0, 1}), Ranking({0, 1}),
                               Ranking({1, 0})};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult r = BruteForceKemeny(w);
  EXPECT_EQ(r.ranking, Ranking({0, 1}));
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
}

class KemenyRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KemenyRandomTest, IlpMatchesBruteForceCost) {
  Rng rng(GetParam());
  const int n = 4 + static_cast<int>(rng.NextUint64(4));  // 4..7
  const int m = 3 + static_cast<int>(rng.NextUint64(6));
  std::vector<Ranking> base;
  for (int i = 0; i < m; ++i) base.push_back(testing::RandomRanking(n, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult exact = KemenyAggregate(w);
  KemenyResult brute = BruteForceKemeny(w);
  ASSERT_TRUE(exact.optimal) << "seed " << GetParam();
  EXPECT_DOUBLE_EQ(exact.cost, brute.cost) << "seed " << GetParam();
  // The consensus cost equals the summed Kendall tau distance.
  int64_t kt = 0;
  for (const Ranking& r : base) kt += KendallTau(exact.ranking, r);
  EXPECT_DOUBLE_EQ(exact.cost, static_cast<double>(kt));
}

TEST_P(KemenyRandomTest, KemenyBeatsHeuristicAggregators) {
  Rng rng(GetParam() + 4000);
  const int n = 5 + static_cast<int>(rng.NextUint64(3));
  std::vector<Ranking> base;
  for (int i = 0; i < 9; ++i) base.push_back(testing::RandomRanking(n, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  KemenyResult exact = KemenyAggregate(w);
  ASSERT_TRUE(exact.optimal);
  for (int trial = 0; trial < 20; ++trial) {
    Ranking r = testing::RandomRanking(n, &rng);
    EXPECT_LE(exact.cost, w.KemenyCost(r) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KemenyRandomTest,
                         ::testing::Range<uint64_t>(400, 430));

TEST(LocalKemenyImproveTest, NeverIncreasesCost) {
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 10 + static_cast<int>(rng.NextUint64(20));
    std::vector<Ranking> base;
    for (int i = 0; i < 7; ++i) base.push_back(testing::RandomRanking(n, &rng));
    PrecedenceMatrix w = PrecedenceMatrix::Build(base);
    Ranking r = testing::RandomRanking(n, &rng);
    const double before = w.KemenyCost(r);
    LocalKemenyImprove(w, &r);
    EXPECT_LE(w.KemenyCost(r), before + 1e-9);
    ASSERT_TRUE(Ranking::IsValidOrder(r.order()));
  }
}

TEST(LocalKemenyImproveTest, ReachesAdjacentLocalOptimum) {
  Rng rng(92);
  const int n = 15;
  std::vector<Ranking> base;
  for (int i = 0; i < 9; ++i) base.push_back(testing::RandomRanking(n, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  Ranking r = testing::RandomRanking(n, &rng);
  LocalKemenyImprove(w, &r);
  // Every adjacent pair respects the (weak) pairwise majority.
  for (int p = 0; p + 1 < n; ++p) {
    const CandidateId above = r.At(p);
    const CandidateId below = r.At(p + 1);
    EXPECT_GE(w.PrefersCount(above, below), w.PrefersCount(below, above))
        << "adjacent pair at " << p << " violates majority";
  }
}

TEST(LocalKemenyImproveTest, FindsOptimumFromAnyStartOnTinyInstances) {
  Rng rng(93);
  int optimal_hits = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 5;
    std::vector<Ranking> base;
    for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(n, &rng));
    PrecedenceMatrix w = PrecedenceMatrix::Build(base);
    Ranking r = testing::RandomRanking(n, &rng);
    LocalKemenyImprove(w, &r);
    if (w.KemenyCost(r) <= BruteForceKemeny(w).cost + 1e-9) ++optimal_hits;
  }
  // Adjacent-swap local search is not exact, but should usually land on
  // the optimum for tiny instances.
  EXPECT_GE(optimal_hits, 12);
}

TEST(LocalKemenyImproveTest, NoOpOnOptimalRanking) {
  std::vector<Ranking> base(5, Ranking({2, 0, 1}));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  Ranking r({2, 0, 1});
  EXPECT_EQ(LocalKemenyImprove(w, &r), 0);
  EXPECT_EQ(r, Ranking({2, 0, 1}));
}

}  // namespace
}  // namespace manirank
