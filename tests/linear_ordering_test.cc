#include "lp/linear_ordering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/rng.h"

namespace manirank::lp {
namespace {

/// Exhaustive linear-ordering optimum for n <= 8.
double BruteForceOrderCost(const std::vector<std::vector<double>>& w) {
  const int n = static_cast<int>(w.size());
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double cost = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) cost += w[perm[p]][perm[q]];
    }
    best = std::min(best, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

std::vector<std::vector<double>> RandomProfileCosts(int n, int rankers,
                                                    Rng* rng) {
  // Random preference profile: W[a][b] = #rankers placing b above a.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (int r = 0; r < rankers; ++r) {
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    rng->Shuffle(&perm);
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) w[perm[q]][perm[p]] += 1.0;
    }
  }
  return w;
}

TEST(LinearOrderingTest, TrivialSizes) {
  LinearOrderingProblem one(std::vector<std::vector<double>>{{0.0}});
  auto r1 = one.Solve();
  ASSERT_TRUE(r1.has_solution);
  EXPECT_EQ(r1.order, std::vector<int>({0}));

  // Two items: cost(0 above 1) = 5, cost(1 above 0) = 2 -> 1 first.
  LinearOrderingProblem two({{0.0, 5.0}, {2.0, 0.0}});
  auto r2 = two.Solve();
  ASSERT_TRUE(r2.has_solution);
  EXPECT_EQ(r2.order, std::vector<int>({1, 0}));
  EXPECT_NEAR(r2.objective, 2.0, 1e-9);
}

TEST(LinearOrderingTest, TransitiveMajorityIsSolvedExactly) {
  // Clear total order 2 > 0 > 1 (cheap to put 2 on top).
  std::vector<std::vector<double>> w = {
      {0, 1, 9}, {8, 0, 9}, {1, 1, 0}};
  LinearOrderingProblem problem(w);
  auto r = problem.Solve();
  ASSERT_TRUE(r.has_solution);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, BruteForceOrderCost(w), 1e-9);
}

TEST(LinearOrderingTest, CondorcetCycleIsResolvedOptimally) {
  // Rock-paper-scissors majority cycle: 0 beats 1, 1 beats 2, 2 beats 0.
  // W[a][b] = cost of a above b: beating directions are cheap (1), the
  // reverse expensive (2); any order breaks exactly one edge.
  std::vector<std::vector<double>> w = {
      {0, 1, 2}, {2, 0, 1}, {1, 2, 0}};
  LinearOrderingProblem problem(w);
  auto r = problem.Solve();
  ASSERT_TRUE(r.has_solution);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, BruteForceOrderCost(w), 1e-9);
  EXPECT_NEAR(r.objective, 4.0, 1e-9);  // 1 + 1 + 2
}

TEST(LinearOrderingTest, OrderCostMatchesManualCount) {
  std::vector<std::vector<double>> w = {
      {0, 3, 1}, {2, 0, 4}, {5, 1, 0}};
  LinearOrderingProblem problem(w);
  // Order [2, 0, 1]: pairs (2,0) w[2][0]=5, (2,1) w[2][1]=1, (0,1) w[0][1]=3.
  EXPECT_NEAR(problem.OrderCost({2, 0, 1}), 9.0, 1e-12);
}

TEST(LinearOrderingTest, PairConstraintForcesCandidateToBottom) {
  Rng rng(4);
  const int n = 5;
  std::vector<std::vector<double>> w = RandomProfileCosts(n, 7, &rng);
  LinearOrderingProblem problem(w);
  // Force candidate 0 below everyone: sum_b Y[0][b] <= 0.
  std::vector<LinearOrderingProblem::PairTerm> terms;
  for (int b = 1; b < n; ++b) terms.push_back({0, b, 1.0});
  problem.AddPairConstraint(terms, Sense::kLessEqual, 0.0);
  auto r = problem.Solve();
  ASSERT_TRUE(r.has_solution);
  EXPECT_EQ(r.order.back(), 0);
}

TEST(LinearOrderingTest, PairConstraintForcesCandidateToTop) {
  Rng rng(5);
  const int n = 6;
  std::vector<std::vector<double>> w = RandomProfileCosts(n, 5, &rng);
  LinearOrderingProblem problem(w);
  // Y[3][b] >= 1 for all b: candidate 3 above everyone.
  for (int b = 0; b < n; ++b) {
    if (b != 3) problem.AddPairConstraint({{3, b, 1.0}}, Sense::kGreaterEqual, 1.0);
  }
  auto r = problem.Solve();
  ASSERT_TRUE(r.has_solution);
  EXPECT_EQ(r.order.front(), 3);
}

TEST(LinearOrderingTest, InfeasibleConstraintsDetected) {
  std::vector<std::vector<double>> w = {{0, 1}, {1, 0}};
  LinearOrderingProblem problem(w);
  problem.AddPairConstraint({{0, 1, 1.0}}, Sense::kGreaterEqual, 1.0);
  problem.AddPairConstraint({{1, 0, 1.0}}, Sense::kGreaterEqual, 1.0);
  auto r = problem.Solve();
  EXPECT_FALSE(r.has_solution);
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
}

TEST(LinearOrderingTest, ConstrainedOptimumMatchesFilteredBruteForce) {
  // Candidate 2 forced above candidate 4; compare against brute force
  // restricted to permutations satisfying that.
  Rng rng(6);
  const int n = 6;
  std::vector<std::vector<double>> w = RandomProfileCosts(n, 9, &rng);
  LinearOrderingProblem problem(w);
  problem.AddPairConstraint({{2, 4, 1.0}}, Sense::kGreaterEqual, 1.0);
  auto r = problem.Solve();
  ASSERT_TRUE(r.has_solution);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);

  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    int pos2 = -1, pos4 = -1;
    for (int p = 0; p < n; ++p) {
      if (perm[p] == 2) pos2 = p;
      if (perm[p] == 4) pos4 = p;
    }
    if (pos2 > pos4) continue;
    best = std::min(best, problem.OrderCost(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(r.objective, best, 1e-7);
  // The returned order respects the constraint.
  auto pos = [&](int c) {
    return std::find(r.order.begin(), r.order.end(), c) - r.order.begin();
  };
  EXPECT_LT(pos(2), pos(4));
}

class LinearOrderingRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinearOrderingRandomTest, MatchesBruteForceOnProfiles) {
  Rng rng(GetParam());
  const int n = 4 + static_cast<int>(rng.NextUint64(4));  // 4..7
  const int rankers = 3 + static_cast<int>(rng.NextUint64(8));
  std::vector<std::vector<double>> w = RandomProfileCosts(n, rankers, &rng);
  LinearOrderingProblem problem(w);
  auto r = problem.Solve();
  ASSERT_TRUE(r.has_solution) << "seed " << GetParam();
  ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(r.objective, BruteForceOrderCost(w), 1e-7)
      << "seed " << GetParam() << " n=" << n;
}

TEST_P(LinearOrderingRandomTest, MatchesBruteForceOnArbitraryCosts) {
  Rng rng(GetParam() + 5000);
  const int n = 4 + static_cast<int>(rng.NextUint64(3));  // 4..6
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a != b) w[a][b] = static_cast<double>(rng.NextUint64(10));
    }
  }
  LinearOrderingProblem problem(w);
  auto r = problem.Solve();
  ASSERT_TRUE(r.has_solution) << "seed " << GetParam();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, BruteForceOrderCost(w), 1e-7)
      << "seed " << GetParam() << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearOrderingRandomTest,
                         ::testing::Range<uint64_t>(200, 240));

TEST(SolveLinearOrderingTest, ConvenienceWrapper) {
  SolveStatus status;
  std::vector<int> order =
      SolveLinearOrdering({{0.0, 0.0}, {9.0, 0.0}}, &status);
  EXPECT_EQ(status, SolveStatus::kOptimal);
  EXPECT_EQ(order, std::vector<int>({0, 1}));
}

}  // namespace
}  // namespace manirank::lp
