#include "core/make_mr_fair.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/distance.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

CandidateTable SegregatedBinaryTable(int n) {
  std::vector<Attribute> attrs = {{"G", {"top", "bottom"}}};
  std::vector<std::vector<AttributeValue>> values(n, std::vector<AttributeValue>(1));
  for (int c = 0; c < n; ++c) values[c][0] = c < n / 2 ? 0 : 1;
  return CandidateTable(std::move(attrs), std::move(values));
}

TEST(MakeMrFairTest, AlreadyFairRankingIsUntouched) {
  CandidateTable t = SegregatedBinaryTable(8);
  Ranking interleaved({0, 4, 1, 5, 2, 6, 3, 7});
  MakeMrFairOptions options;
  options.delta = 0.5;
  MakeMrFairResult r = MakeMrFair(interleaved, t, options);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.swaps, 0);
  EXPECT_EQ(r.ranking, interleaved);
}

TEST(MakeMrFairTest, RepairsFullySegregatedRanking) {
  CandidateTable t = SegregatedBinaryTable(10);
  Ranking segregated = Ranking::Identity(10);  // ARP = 1.0
  MakeMrFairOptions options;
  options.delta = 0.1;
  MakeMrFairResult r = MakeMrFair(segregated, t, options);
  EXPECT_TRUE(r.satisfied);
  EXPECT_GT(r.swaps, 0);
  EXPECT_TRUE(SatisfiesManiRank(r.ranking, t, 0.1));
}

TEST(MakeMrFairTest, DeltaZeroAchievesExactParityWhenPossible) {
  // Equal-size binary groups, even interleave exists: delta = 0 feasible.
  CandidateTable t = SegregatedBinaryTable(8);
  MakeMrFairOptions options;
  options.delta = 0.0;
  MakeMrFairResult r = MakeMrFair(Ranking::Identity(8), t, options);
  EXPECT_TRUE(r.satisfied);
  EXPECT_NEAR(RankParity(r.ranking, t.attribute_grouping(0)), 0.0, 1e-12);
}

TEST(MakeMrFairTest, MultiAttributeIntersectionGetsRepaired) {
  // 24 candidates, 2x3 attributes; start from the worst case (sorted by
  // intersection cell).
  CandidateTable t = testing::CyclicTable(24, 2, 3);
  std::vector<CandidateId> order(24);
  // Sort candidates so equal cells are contiguous: strongly unfair.
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](CandidateId a, CandidateId b) {
    return t.intersection_grouping().group_of[a] <
           t.intersection_grouping().group_of[b];
  });
  MakeMrFairOptions options;
  options.delta = 0.15;
  MakeMrFairResult r = MakeMrFair(Ranking(std::move(order)), t, options);
  EXPECT_TRUE(r.satisfied);
  EXPECT_TRUE(SatisfiesManiRank(r.ranking, t, 0.15));
}

TEST(MakeMrFairTest, PerAttributeThresholds) {
  CandidateTable t = testing::CyclicTable(24, 2, 2);
  Rng rng(5);
  Ranking start = testing::RandomRanking(24, &rng);
  MakeMrFairOptions options;
  ManiRankThresholds thresholds;
  thresholds.attribute_delta = {0.05, 0.5};
  thresholds.intersection_delta = 0.5;
  options.thresholds = thresholds;
  MakeMrFairResult r = MakeMrFair(start, t, options);
  EXPECT_TRUE(r.satisfied);
  EXPECT_LE(RankParity(r.ranking, t.attribute_grouping(0)), 0.05 + 1e-9);
}

TEST(MakeMrFairTest, SwapBudgetIsHonoured) {
  CandidateTable t = SegregatedBinaryTable(20);
  MakeMrFairOptions options;
  options.delta = 0.01;
  options.max_swaps = 1;
  MakeMrFairResult r = MakeMrFair(Ranking::Identity(20), t, options);
  EXPECT_LE(r.swaps, 1);
  EXPECT_FALSE(r.satisfied);
}

TEST(MakeMrFairTest, EachSwapImprovesTargetParity) {
  // Instrumented run: repair with max_swaps = k for growing k and check
  // the worst parity never increases.
  CandidateTable t = testing::CyclicTable(18, 3, 2);
  Rng rng(9);
  Ranking start = testing::RandomRanking(18, &rng);
  double prev = EvaluateFairness(start, t).MaxParity();
  for (int64_t k = 1; k <= 30; ++k) {
    MakeMrFairOptions options;
    options.delta = 0.02;
    options.max_swaps = k;
    MakeMrFairResult r = MakeMrFair(start, t, options);
    const double worst = EvaluateFairness(r.ranking, t).MaxParity();
    EXPECT_LE(worst, prev + 0.25) << "parity should trend down";
    if (r.satisfied) break;
    prev = std::max(prev, worst);
  }
}

TEST(MakeMrFairTest, PreservesWithinGroupOrder) {
  // The paper's swaps exchange members of different groups; candidates of
  // the same intersection cell never swap, so their relative order is
  // preserved from the input consensus.
  CandidateTable t = testing::CyclicTable(24, 2, 2);
  Rng rng(11);
  Ranking start = testing::RandomRanking(24, &rng);
  MakeMrFairOptions options;
  options.delta = 0.05;
  MakeMrFairResult r = MakeMrFair(start, t, options);
  const Grouping& inter = t.intersection_grouping();
  for (int g = 0; g < inter.num_groups(); ++g) {
    const auto& members = inter.members[g];
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_EQ(start.Prefers(members[i], members[j]),
                  r.ranking.Prefers(members[i], members[j]))
            << "within-cell order changed";
      }
    }
  }
}

struct EngineParam {
  int n;
  int d0, d1;
  double delta;
  uint64_t seed;
};

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineEquivalenceTest, ReferenceAndIndexedEnginesAgree) {
  const EngineParam& p = GetParam();
  Rng rng(p.seed);
  CandidateTable t = testing::RandomTable(p.n, {p.d0, p.d1}, &rng);
  for (int trial = 0; trial < 5; ++trial) {
    Ranking start = testing::RandomRanking(p.n, &rng);
    MakeMrFairOptions reference;
    reference.delta = p.delta;
    reference.engine = MakeMrFairOptions::Engine::kReference;
    MakeMrFairOptions indexed;
    indexed.delta = p.delta;
    indexed.engine = MakeMrFairOptions::Engine::kIndexed;
    MakeMrFairResult a = MakeMrFair(start, t, reference);
    MakeMrFairResult b = MakeMrFair(start, t, indexed);
    ASSERT_EQ(a.ranking, b.ranking)
        << "engines diverged, seed=" << p.seed << " trial=" << trial;
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.satisfied, b.satisfied);
  }
}

TEST_P(EngineEquivalenceTest, ResultSatisfiesDeltaOrReportsFailure) {
  const EngineParam& p = GetParam();
  Rng rng(p.seed + 1);
  CandidateTable t = testing::RandomTable(p.n, {p.d0, p.d1}, &rng);
  Ranking start = testing::RandomRanking(p.n, &rng);
  MakeMrFairOptions options;
  options.delta = p.delta;
  MakeMrFairResult r = MakeMrFair(start, t, options);
  EXPECT_EQ(r.satisfied, SatisfiesManiRank(r.ranking, t, p.delta));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineEquivalenceTest,
    ::testing::Values(EngineParam{12, 2, 2, 0.2, 1000},
                      EngineParam{20, 2, 3, 0.15, 2000},
                      EngineParam{30, 3, 3, 0.1, 3000},
                      EngineParam{45, 5, 3, 0.1, 4000},
                      EngineParam{60, 2, 2, 0.05, 5000},
                      EngineParam{24, 4, 2, 0.25, 6000}));

TEST(MakeMrFairTest, RandomPairPolicyAlsoRepairs) {
  CandidateTable t = SegregatedBinaryTable(16);
  MakeMrFairOptions options;
  options.delta = 0.1;
  options.swap_policy = MakeMrFairOptions::SwapPolicy::kRandomPair;
  options.seed = 99;
  MakeMrFairResult r = MakeMrFair(Ranking::Identity(16), t, options);
  EXPECT_TRUE(r.satisfied);
  EXPECT_TRUE(SatisfiesManiRank(r.ranking, t, 0.1));
}

TEST(MakeMrFairTest, PdLossGrowsWithTighterDelta) {
  // Price of fairness: the tighter the threshold, the further the repaired
  // consensus drifts from the original (weak monotonicity up to noise).
  CandidateTable t = SegregatedBinaryTable(32);
  Ranking start = Ranking::Identity(32);
  std::vector<Ranking> base(3, start);
  double prev_loss = -1.0;
  for (double delta : {0.5, 0.3, 0.1, 0.02}) {
    MakeMrFairOptions options;
    options.delta = delta;
    MakeMrFairResult r = MakeMrFair(start, t, options);
    ASSERT_TRUE(r.satisfied) << "delta " << delta;
    const double loss = PdLoss(base, r.ranking);
    EXPECT_GE(loss, prev_loss - 1e-9) << "delta " << delta;
    prev_loss = loss;
  }
}

}  // namespace
}  // namespace manirank
