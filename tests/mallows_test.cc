#include "mallows/mallows.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "core/distance.h"
#include "core/kemeny.h"
#include "core/precedence.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

TEST(MallowsTest, SamplesAreValidPermutations) {
  Rng rng(1);
  MallowsModel model(testing::RandomRanking(20, &rng), 0.5);
  Rng sample_rng(2);
  for (int i = 0; i < 50; ++i) {
    Ranking r = model.Sample(&sample_rng);
    ASSERT_EQ(r.size(), 20);
    ASSERT_TRUE(Ranking::IsValidOrder(r.order()));
  }
}

TEST(MallowsTest, LargeThetaConcentratesOnModal) {
  Rng rng(3);
  Ranking modal = testing::RandomRanking(12, &rng);
  MallowsModel model(modal, 10.0);
  std::vector<Ranking> samples = model.SampleMany(50, 7);
  int exact = 0;
  for (const Ranking& r : samples) exact += (r == modal);
  EXPECT_GE(exact, 45);  // e^-10 per inversion: near-certain exact match
}

TEST(MallowsTest, ThetaZeroIsUniform) {
  // All 6 permutations of 3 items should appear with equal frequency.
  MallowsModel model(Ranking::Identity(3), 0.0);
  std::map<std::string, int> counts;
  constexpr int kSamples = 6000;
  std::vector<Ranking> samples = model.SampleMany(kSamples, 11);
  for (const Ranking& r : samples) ++counts[r.ToString()];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(count, kSamples / 6.0, 150.0) << perm;
  }
}

TEST(MallowsTest, EmpiricalMeanDistanceMatchesExpectation) {
  Rng rng(5);
  for (double theta : {0.1, 0.4, 1.0, 2.0}) {
    Ranking modal = testing::RandomRanking(25, &rng);
    MallowsModel model(modal, theta);
    constexpr int kSamples = 3000;
    std::vector<Ranking> samples = model.SampleMany(kSamples, 13);
    double mean = 0.0;
    for (const Ranking& r : samples) {
      mean += static_cast<double>(KendallTau(r, modal));
    }
    mean /= kSamples;
    const double expected = model.ExpectedKendallTau();
    EXPECT_NEAR(mean, expected, expected * 0.05 + 2.0) << "theta " << theta;
  }
}

TEST(MallowsTest, ExpectedDistanceDecreasesWithTheta) {
  Ranking modal = Ranking::Identity(30);
  double prev = 1e18;
  for (double theta : {0.0, 0.2, 0.5, 1.0, 2.0, 4.0}) {
    MallowsModel model(modal, theta);
    const double expected = model.ExpectedKendallTau();
    EXPECT_LT(expected, prev);
    prev = expected;
  }
}

TEST(MallowsTest, ExpectedDistanceAtThetaZeroIsHalfOfMax) {
  MallowsModel model(Ranking::Identity(10), 0.0);
  EXPECT_DOUBLE_EQ(model.ExpectedKendallTau(),
                   static_cast<double>(TotalPairs(10)) / 2.0);
}

TEST(MallowsTest, ProbabilitiesSumToOneOverAllPermutations) {
  // n = 4: enumerate all 24 permutations.
  Ranking modal = Ranking::Identity(4);
  for (double theta : {0.0, 0.3, 1.0}) {
    MallowsModel model(modal, theta);
    std::vector<CandidateId> perm = {0, 1, 2, 3};
    double total = 0.0;
    do {
      total += model.Probability(Ranking{std::vector<CandidateId>(perm)});
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(total, 1.0, 1e-9) << "theta " << theta;
  }
}

TEST(MallowsTest, ProbabilityDecaysExponentiallyWithDistance) {
  MallowsModel model(Ranking::Identity(5), 0.7);
  Ranking one_swap({1, 0, 2, 3, 4});
  EXPECT_NEAR(model.Probability(one_swap) / model.Probability(model.modal()),
              std::exp(-0.7), 1e-9);
}

TEST(MallowsTest, SampleManyIsDeterministicInSeed) {
  MallowsModel model(Ranking::Identity(15), 0.6);
  std::vector<Ranking> a = model.SampleMany(40, 99);
  std::vector<Ranking> b = model.SampleMany(40, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  // Different seed, different draw.
  std::vector<Ranking> c = model.SampleMany(40, 100);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) same += (a[i] == c[i]);
  EXPECT_LT(same, 5);
}

TEST(MallowsTest, SampleManyIndependentOfThreadCount) {
  // Per-sample seeding: identical output regardless of parallel split.
  MallowsModel model(Ranking::Identity(12), 0.4);
  std::vector<Ranking> parallel = model.SampleMany(30, 55);
  std::vector<Ranking> serial(30);
  for (size_t i = 0; i < serial.size(); ++i) {
    Rng rng = MallowsModel::SampleRng(55, i);
    serial[i] = model.Sample(&rng);
  }
  for (size_t i = 0; i < serial.size(); ++i) ASSERT_EQ(parallel[i], serial[i]);
}

TEST(MallowsTest, KemenyOfSamplesRecoversModal) {
  // Consistency of the MLE: Kemeny on many samples = modal ranking.
  Rng rng(17);
  Ranking modal = testing::RandomRanking(10, &rng);
  MallowsModel model(modal, 1.0);
  std::vector<Ranking> samples = model.SampleMany(301, 21);
  PrecedenceMatrix w = PrecedenceMatrix::Build(samples);
  Ranking consensus;
  ASSERT_TRUE(TryTransitiveKemeny(w, &consensus));
  EXPECT_EQ(consensus, modal);
}

class MallowsSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(MallowsSizeTest, SamplerScalesAcrossSizes) {
  const int n = GetParam();
  MallowsModel model(Ranking::Identity(n), 0.8);
  Rng rng(23);
  Ranking r = model.Sample(&rng);
  ASSERT_EQ(r.size(), n);
  ASSERT_TRUE(Ranking::IsValidOrder(r.order()));
  // Sampled ranking should be far closer to modal than a uniform one.
  if (n >= 50) {
    EXPECT_LT(static_cast<double>(KendallTau(r, model.modal())),
              0.5 * static_cast<double>(TotalPairs(n)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MallowsSizeTest,
                         ::testing::Values(1, 2, 10, 100, 1000, 5000));

}  // namespace
}  // namespace manirank
