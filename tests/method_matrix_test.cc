// Cross-method invariant matrix: every consensus method of the study is
// run over a grid of dataset shapes and consensus strengths, and the
// universal contracts are checked on each cell. This is the repo's
// broadest property suite — it catches regressions in any aggregator,
// the repair loop, or the metrics at once.

#include <gtest/gtest.h>

#include <optional>

#include "manirank.h"
#include "test_util.h"

namespace manirank {
namespace {

struct MatrixParam {
  int per_cell;      // candidates per intersection cell
  int d0, d1;        // attribute domain sizes
  double bias;       // modal ARP target for both attributes
  double theta;      // Mallows spread
  double delta;      // fairness threshold
  uint64_t seed;
};

class MethodMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  void SetUp() override {
    const MatrixParam& p = GetParam();
    ModalDesignSpec spec;
    Attribute a0{"A", {}}, a1{"B", {}};
    for (int v = 0; v < p.d0; ++v) a0.values.push_back("a" + std::to_string(v));
    for (int v = 0; v < p.d1; ++v) a1.values.push_back("b" + std::to_string(v));
    spec.attributes = {a0, a1};
    spec.cell_counts.assign(static_cast<size_t>(p.d0) * p.d1, p.per_cell);
    spec.attribute_arp_target = {p.bias, p.bias};
    spec.irp_target = std::min(1.0, p.bias + 0.2);
    spec.tolerance = 0.08;
    spec.seed = p.seed;
    design_.emplace(DesignModalRanking(spec));
    MallowsModel model(design_->modal, p.theta);
    base_ = model.SampleMany(60, p.seed + 1);
  }

  std::optional<ModalDesignResult> design_;
  std::vector<Ranking> base_;
};

TEST_P(MethodMatrixTest, UniversalMethodContracts) {
  const MatrixParam& p = GetParam();
  ConsensusContext ctx(base_, design_->table);
  ConsensusOptions options;
  options.delta = p.delta;
  options.time_limit_seconds = 10.0;

  const int n = design_->table.num_candidates();
  double kemeny_loss = -1.0;
  for (const MethodSpec& method : AllMethods()) {
    ConsensusOutput out = method.run(ctx, options);
    // Contract 1: a valid permutation of the right size, always.
    ASSERT_EQ(out.consensus.size(), n) << method.name;
    ASSERT_TRUE(Ranking::IsValidOrder(out.consensus.order())) << method.name;
    // Contract 2: PD loss within [0, 1].
    const double loss = PdLoss(base_, out.consensus);
    ASSERT_GE(loss, 0.0) << method.name;
    ASSERT_LE(loss, 1.0) << method.name;
    // Contract 3: `satisfied` is truthful.
    ASSERT_EQ(out.satisfied,
              SatisfiesManiRank(out.consensus, design_->table, p.delta))
        << method.name;
    // Contract 4: exact Kemeny lower-bounds every method's PD loss.
    if (method.id == "B1" && out.exact) kemeny_loss = loss;
    if (kemeny_loss >= 0.0) {
      ASSERT_GE(loss, kemeny_loss - 1e-9) << method.name;
    }
    // Contract 5: fairness-aware polynomial methods must reach Delta on
    // these (feasible) configurations.
    if (method.fairness_aware && !method.uses_ilp) {
      EXPECT_TRUE(out.satisfied) << method.name << " failed to reach Delta";
    }
  }
}

TEST_P(MethodMatrixTest, RepairPreservesWithinGroupOrderForAllMethods) {
  const MatrixParam& p = GetParam();
  PrecedenceMatrix w = PrecedenceMatrix::Build(base_);
  MakeMrFairOptions options;
  options.delta = p.delta;
  const Grouping& inter = design_->table.intersection_grouping();
  for (FairAggregateResult result :
       {FairBorda(base_, design_->table, options),
        FairCopeland(w, design_->table, options),
        FairSchulze(w, design_->table, options)}) {
    for (int g = 0; g < inter.num_groups(); ++g) {
      const auto& members = inter.members[g];
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          ASSERT_EQ(result.unfair_consensus.Prefers(members[i], members[j]),
                    result.fair_consensus.Prefers(members[i], members[j]))
              << "within-cell order not preserved";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MethodMatrixTest,
    ::testing::Values(
        MatrixParam{5, 2, 2, 0.5, 0.4, 0.15, 7001},
        MatrixParam{4, 2, 3, 0.5, 0.8, 0.20, 7002},
        MatrixParam{3, 3, 2, 0.4, 0.6, 0.20, 7003},
        MatrixParam{6, 2, 2, 0.7, 0.2, 0.15, 7004},
        MatrixParam{2, 4, 2, 0.3, 1.0, 0.25, 7005},
        MatrixParam{8, 2, 2, 0.6, 0.6, 0.10, 7006}));

}  // namespace
}  // namespace manirank
