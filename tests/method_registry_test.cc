#include "core/method_registry.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/fairness_metrics.h"
#include "mallows/mallows.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

struct Fixture {
  CandidateTable table;
  std::vector<Ranking> base;
};

Fixture MakeFixture(int n, uint64_t seed, double theta) {
  Rng rng(seed);
  CandidateTable table = testing::CyclicTable(n, 2, 2);
  // Mildly biased modal ranking: identity (cells interleaved but gendered
  // pattern emerges at small n is fine for smoke coverage).
  Ranking modal = testing::RandomRanking(n, &rng);
  MallowsModel model(modal, theta);
  return {std::move(table), model.SampleMany(20, seed)};
}

TEST(MethodRegistryTest, HasAllEightPaperMethods) {
  const auto& methods = AllMethods();
  ASSERT_EQ(methods.size(), 8u);
  EXPECT_EQ(methods[0].id, "A1");
  EXPECT_EQ(methods[0].name, "Fair-Kemeny");
  EXPECT_EQ(methods[7].id, "B4");
  EXPECT_EQ(methods[7].name, "Correct-Fairest-Perm");
}

TEST(MethodRegistryTest, FindByIdAndName) {
  EXPECT_NE(FindMethod("A3"), nullptr);
  EXPECT_EQ(FindMethod("A3")->name, "Fair-Borda");
  EXPECT_NE(FindMethod("Kemeny"), nullptr);
  EXPECT_EQ(FindMethod("Kemeny")->id, "B1");
  EXPECT_EQ(FindMethod("nope"), nullptr);
}

TEST(MethodRegistryTest, AllMethodsProduceValidConsensus) {
  Fixture f = MakeFixture(16, 42, 0.8);
  ConsensusContext ctx(f.base, f.table);
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  for (const MethodSpec& method : AllMethods()) {
    ConsensusOutput out = method.run(ctx, options);
    ASSERT_EQ(out.consensus.size(), 16) << method.name;
    ASSERT_TRUE(Ranking::IsValidOrder(out.consensus.order())) << method.name;
    EXPECT_GE(out.seconds, 0.0);
  }
}

TEST(MethodRegistryTest, FairnessAwareMethodsSatisfyDelta) {
  Fixture f = MakeFixture(20, 43, 1.0);
  ConsensusContext ctx(f.base, f.table);
  ConsensusOptions options;
  options.delta = 0.15;
  options.time_limit_seconds = 60.0;
  for (const char* id : {"A1", "A2", "A3", "A4", "B4"}) {
    const MethodSpec* method = FindMethod(id);
    ASSERT_NE(method, nullptr);
    ConsensusOutput out = method->run(ctx, options);
    EXPECT_TRUE(SatisfiesManiRank(out.consensus, f.table, options.delta))
        << method->name;
    EXPECT_TRUE(out.satisfied) << method->name;
  }
}

TEST(MethodRegistryTest, FairKemenyHasLowestPdLossAmongFairMethods) {
  // A1 minimises disagreement subject to the same constraints the other
  // MFCR methods satisfy, so its PD loss is minimal among A1..A4 (Fig. 4).
  Fixture f = MakeFixture(14, 44, 0.6);
  ConsensusContext ctx(f.base, f.table);
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  const MethodSpec* a1 = FindMethod("A1");
  ConsensusOutput fair_kemeny = a1->run(ctx, options);
  ASSERT_TRUE(fair_kemeny.exact);
  const double a1_loss = PdLoss(f.base, fair_kemeny.consensus);
  for (const char* id : {"A2", "A3", "A4"}) {
    ConsensusOutput out = FindMethod(id)->run(ctx, options);
    if (out.satisfied) {
      EXPECT_GE(PdLoss(f.base, out.consensus), a1_loss - 1e-9) << id;
    }
  }
}

TEST(MethodRegistryTest, KemenyHasLowestPdLossOverall) {
  Fixture f = MakeFixture(14, 45, 0.6);
  ConsensusContext ctx(f.base, f.table);
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  ConsensusOutput kemeny = FindMethod("B1")->run(ctx, options);
  ASSERT_TRUE(kemeny.exact);
  const double b1_loss = PdLoss(f.base, kemeny.consensus);
  for (const MethodSpec& method : AllMethods()) {
    ConsensusOutput out = method.run(ctx, options);
    EXPECT_GE(PdLoss(f.base, out.consensus), b1_loss - 1e-9) << method.name;
  }
}

TEST(MethodRegistryTest, MethodFlagsAreConsistent) {
  EXPECT_TRUE(FindMethod("A1")->uses_ilp);
  EXPECT_TRUE(FindMethod("B1")->uses_ilp);
  EXPECT_TRUE(FindMethod("B2")->uses_ilp);
  EXPECT_FALSE(FindMethod("A3")->uses_ilp);
  EXPECT_TRUE(FindMethod("A1")->fairness_aware);
  EXPECT_FALSE(FindMethod("B1")->fairness_aware);
  EXPECT_TRUE(FindMethod("B4")->fairness_aware);
}

}  // namespace
}  // namespace manirank
