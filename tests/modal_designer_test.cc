#include "mallows/modal_designer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace manirank {
namespace {

TEST(MakeTableFromCellsTest, MixedRadixAssignment) {
  std::vector<Attribute> attrs = {{"A", {"a0", "a1"}}, {"B", {"b0", "b1", "b2"}}};
  // Cells in order (a0,b0), (a0,b1), (a0,b2), (a1,b0), ...
  CandidateTable t = MakeTableFromCells(attrs, {1, 2, 0, 3, 0, 1});
  EXPECT_EQ(t.num_candidates(), 7);
  EXPECT_EQ(t.value(0, 0), 0);  // cell (a0, b0)
  EXPECT_EQ(t.value(0, 1), 0);
  EXPECT_EQ(t.value(1, 1), 1);  // first of two (a0, b1)
  EXPECT_EQ(t.value(3, 0), 1);  // first (a1, b0)
  EXPECT_EQ(t.value(6, 1), 2);  // the single (a1, b2)
}

TEST(ModalDesignerTest, HitsEasyTargets) {
  ModalDesignSpec spec;
  spec.attributes = {{"X", {"x0", "x1"}}, {"Y", {"y0", "y1"}}};
  spec.cell_counts = {5, 5, 5, 5};
  spec.attribute_arp_target = {0.4, 0.2};
  spec.irp_target = 0.5;
  spec.tolerance = 0.03;
  ModalDesignResult r = DesignModalRanking(spec);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.report.parity[0], 0.4, 0.03);
  EXPECT_NEAR(r.report.parity[1], 0.2, 0.03);
  EXPECT_NEAR(r.report.parity[2], 0.5, 0.03);
}

TEST(ModalDesignerTest, ExtremeUnfairnessTarget) {
  ModalDesignSpec spec;
  spec.attributes = {{"X", {"x0", "x1"}}};
  spec.cell_counts = {8, 8};
  spec.attribute_arp_target = {1.0};
  spec.tolerance = 0.01;
  ModalDesignResult r = DesignModalRanking(spec);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.report.parity[0], 1.0, 0.01);
}

TEST(ModalDesignerTest, DeterministicInSeed) {
  ModalDesignSpec spec;
  spec.attributes = {{"X", {"x0", "x1"}}, {"Y", {"y0", "y1"}}};
  spec.cell_counts = {6, 6, 6, 6};
  spec.attribute_arp_target = {0.3, 0.3};
  spec.irp_target = 0.4;
  spec.seed = 123;
  ModalDesignResult a = DesignModalRanking(spec);
  ModalDesignResult b = DesignModalRanking(spec);
  EXPECT_EQ(a.modal, b.modal);
}

TEST(TableIDatasetTest, AllThreeProfilesConverge) {
  for (TableIDataset kind : {TableIDataset::kLowFair, TableIDataset::kMediumFair,
                             TableIDataset::kHighFair}) {
    ModalDesignResult r = MakeTableIDataset(kind);
    EXPECT_TRUE(r.converged) << ToString(kind);
    EXPECT_EQ(r.table.num_candidates(), 90);
    EXPECT_EQ(r.table.intersection_grouping().num_groups(), 15);
  }
}

TEST(TableIDatasetTest, LowFairMatchesPaperProfile) {
  ModalDesignResult r = MakeTableIDataset(TableIDataset::kLowFair);
  ASSERT_EQ(r.report.parity.size(), 3u);
  EXPECT_NEAR(r.report.parity[0], 0.70, 0.025);  // ARP Race
  EXPECT_NEAR(r.report.parity[1], 0.70, 0.025);  // ARP Gender
  EXPECT_NEAR(r.report.parity[2], 1.00, 0.025);  // IRP
}

TEST(ExpandDesignTest, PreservesFprExactly) {
  ModalDesignSpec spec;
  spec.attributes = {{"X", {"x0", "x1"}}, {"Y", {"y0", "y1"}}};
  spec.cell_counts = {4, 4, 4, 4};
  spec.attribute_arp_target = {0.35, 0.5};
  spec.irp_target = 0.6;
  ModalDesignResult base = DesignModalRanking(spec);
  ModalDesignResult big = ExpandDesign(base, 5);
  EXPECT_EQ(big.table.num_candidates(), 80);
  ASSERT_EQ(big.report.parity.size(), base.report.parity.size());
  for (size_t i = 0; i < base.report.parity.size(); ++i) {
    EXPECT_NEAR(big.report.parity[i], base.report.parity[i], 1e-9)
        << "grouping " << i;
  }
  // Per-group FPR preserved, not just parity.
  for (size_t g = 0; g < base.report.fpr.size(); ++g) {
    ASSERT_EQ(base.report.fpr[g].size(), big.report.fpr[g].size());
    for (size_t j = 0; j < base.report.fpr[g].size(); ++j) {
      EXPECT_NEAR(big.report.fpr[g][j], base.report.fpr[g][j], 1e-9);
    }
  }
}

TEST(ExpandDesignTest, FactorOneIsIdentityOnMetrics) {
  ModalDesignResult base = MakeScalabilityDataset(100, 0.3, 0.5, 0.4);
  ModalDesignResult same = ExpandDesign(base, 1);
  EXPECT_EQ(same.table.num_candidates(), base.table.num_candidates());
  for (size_t i = 0; i < base.report.parity.size(); ++i) {
    EXPECT_NEAR(same.report.parity[i], base.report.parity[i], 1e-12);
  }
}

TEST(ScalabilityDatasetTest, TargetsHitAtSmallScale) {
  ModalDesignResult r = MakeRankerScaleDataset(100);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.report.parity[0], 0.15, 0.03);
  EXPECT_NEAR(r.report.parity[1], 0.70, 0.03);
  EXPECT_NEAR(r.report.parity[2], 0.55, 0.03);
}

TEST(ScalabilityDatasetTest, LargeScaleViaExpansion) {
  ModalDesignResult r = MakeCandidateScaleDataset(10000);
  EXPECT_EQ(r.table.num_candidates(), 10000);
  EXPECT_NEAR(r.report.parity[0], 0.31, 0.03);
  EXPECT_NEAR(r.report.parity[1], 0.44, 0.03);
  EXPECT_NEAR(r.report.parity[2], 0.45, 0.03);
}

}  // namespace
}  // namespace manirank
