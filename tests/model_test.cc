#include "lp/model.h"

#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace manirank::lp {
namespace {

TEST(ModelTest, VariableAccessors) {
  Model m;
  int x = m.AddVariable(-1.0, 2.0, 3.5);
  int b = m.AddBinary(-1.0);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_DOUBLE_EQ(m.lower_bound(x), -1.0);
  EXPECT_DOUBLE_EQ(m.upper_bound(x), 2.0);
  EXPECT_DOUBLE_EQ(m.objective_coefficient(x), 3.5);
  EXPECT_FALSE(m.is_integer(x));
  EXPECT_TRUE(m.is_integer(b));
  EXPECT_DOUBLE_EQ(m.lower_bound(b), 0.0);
  EXPECT_DOUBLE_EQ(m.upper_bound(b), 1.0);
}

TEST(ModelTest, IntegerVariableListing) {
  Model m;
  m.AddVariable(0, 1, 0.0);
  m.AddBinary(0.0);
  m.AddVariable(0, 5, 0.0, /*integer=*/true);
  m.AddVariable(0, 1, 0.0);
  EXPECT_EQ(m.IntegerVariables(), (std::vector<int>{1, 2}));
}

TEST(ModelTest, HasIntegralObjective) {
  Model m;
  m.AddVariable(0, 1, 2.0);
  m.AddVariable(0, 1, -3.0);
  EXPECT_TRUE(m.HasIntegralObjective());
  m.set_objective_offset(4.0);
  EXPECT_TRUE(m.HasIntegralObjective());
  m.set_objective_offset(4.5);
  EXPECT_FALSE(m.HasIntegralObjective());
  m.set_objective_offset(0.0);
  m.AddVariable(0, 1, 0.25);
  EXPECT_FALSE(m.HasIntegralObjective());
}

TEST(ModelTest, EvaluateObjectiveIncludesOffset) {
  Model m;
  int x = m.AddVariable(0, 10, 2.0);
  int y = m.AddVariable(0, 10, -1.0);
  m.set_objective_offset(5.0);
  std::vector<double> point(2);
  point[x] = 3.0;
  point[y] = 4.0;
  EXPECT_DOUBLE_EQ(m.EvaluateObjective(point), 5.0 + 6.0 - 4.0);
}

TEST(ModelTest, IsFeasibleChecksBounds) {
  Model m;
  m.AddVariable(0.0, 1.0, 0.0);
  EXPECT_TRUE(m.IsFeasible({0.5}));
  EXPECT_FALSE(m.IsFeasible({1.5}));
  EXPECT_FALSE(m.IsFeasible({-0.5}));
  // Tolerance admits boundary noise.
  EXPECT_TRUE(m.IsFeasible({1.0 + 1e-9}, 1e-6));
  // Wrong dimensionality is infeasible, not UB.
  EXPECT_FALSE(m.IsFeasible({0.5, 0.5}));
}

TEST(ModelTest, IsFeasibleChecksEverySense) {
  Model m;
  int x = m.AddVariable(0, 10, 0.0);
  int y = m.AddVariable(0, 10, 0.0);
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 5.0);
  m.AddConstraint({{x, 1.0}}, Sense::kGreaterEqual, 1.0);
  m.AddConstraint({{y, 2.0}}, Sense::kEqual, 4.0);
  EXPECT_TRUE(m.IsFeasible({2.0, 2.0}));
  EXPECT_FALSE(m.IsFeasible({4.0, 2.0}));  // violates <=
  EXPECT_FALSE(m.IsFeasible({0.5, 2.0}));  // violates >=
  EXPECT_FALSE(m.IsFeasible({2.0, 1.0}));  // violates ==
}

TEST(ModelTest, ConstraintStorageRoundTrip) {
  Model m;
  int x = m.AddVariable(0, 1, 0.0);
  int row = m.AddConstraint({{x, 2.5}}, Sense::kGreaterEqual, 0.5);
  EXPECT_EQ(m.num_constraints(), 1);
  const Constraint& c = m.constraint(row);
  ASSERT_EQ(c.terms.size(), 1u);
  EXPECT_EQ(c.terms[0].first, x);
  EXPECT_DOUBLE_EQ(c.terms[0].second, 2.5);
  EXPECT_EQ(c.sense, Sense::kGreaterEqual);
  EXPECT_DOUBLE_EQ(c.rhs, 0.5);
}

TEST(ModelTest, SolveStatusNames) {
  EXPECT_STREQ(ToString(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(ToString(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(ToString(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(ToString(SolveStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(ToString(SolveStatus::kNodeLimit), "node-limit");
}

}  // namespace
}  // namespace manirank::lp
