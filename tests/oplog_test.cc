// Op-log and durability-layer tests: the length-prefixed checksummed
// record format of data/op_log.h (round trips, torn-tail recovery at
// EVERY byte boundary of the final record, corruption rejection), the
// crash-durable file helpers of data/durable_file.h, and the
// DurabilityManager end-to-end contract — a table cold-started from
// snapshot floor + op-log replay serves the full RUN-all sweep (B2-B4
// included) bit-identically to the process that died, including across
// the snapshot-written-but-log-not-yet-truncated crash window.

#include "data/op_log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "data/durable_file.h"
#include "data/snapshot.h"
#include "mallows/mallows.h"
#include "serve/context_manager.h"
#include "serve/durability.h"
#include "serve/protocol.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

namespace fs = std::filesystem;
using serve::ContextManager;
using serve::Dispatcher;
using serve::DurabilityManager;

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

/// A fresh empty directory per test, removed on teardown.
class OpLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "manirank_oplog_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

std::vector<Ranking> SampleRankings(int n, int count, uint64_t seed) {
  Rng rng(seed);
  return MallowsModel(testing::RandomRanking(n, &rng), 0.5)
      .SampleMany(count, seed);
}

// ---------------------------------------------------------------- writer

TEST_F(OpLogTest, WriterRoundTripsHeaderAndRecords) {
  const std::string path = Path("t.oplog");
  const std::vector<Ranking> batch_a = SampleRankings(6, 2, 1);
  const std::vector<Ranking> batch_b = SampleRankings(6, 1, 2);
  {
    auto writer = OpLogWriter::Create(path, 6, /*base_generation=*/7,
                                      /*base_rankings=*/3);
    EXPECT_EQ(writer->records(), 0u);
    writer->BufferAppend(batch_a);
    writer->BufferRemove(1);
    writer->BufferAppend(batch_b);
    writer->Commit();
    EXPECT_EQ(writer->records(), 3u);
    EXPECT_EQ(writer->bytes(), fs::file_size(path));
  }
  const OpLogContents contents = ReadOpLogFile(path);
  EXPECT_EQ(contents.num_candidates, 6u);
  EXPECT_EQ(contents.base_generation, 7u);
  EXPECT_EQ(contents.base_rankings, 3u);
  EXPECT_TRUE(contents.torn_tail.empty());
  EXPECT_EQ(contents.clean_bytes, fs::file_size(path));
  ASSERT_EQ(contents.records.size(), 3u);
  EXPECT_EQ(contents.records[0].kind, OpRecord::Kind::kAppend);
  ASSERT_EQ(contents.records[0].rankings.size(), batch_a.size());
  for (size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(contents.records[0].rankings[i].order(), batch_a[i].order());
  }
  EXPECT_EQ(contents.records[1].kind, OpRecord::Kind::kRemove);
  EXPECT_EQ(contents.records[1].remove_index, 1u);
  EXPECT_EQ(contents.records[2].kind, OpRecord::Kind::kAppend);
  EXPECT_EQ(contents.records[2].rankings[0].order(), batch_b[0].order());
}

TEST_F(OpLogTest, EmptyCommitIsANoop) {
  const std::string path = Path("t.oplog");
  auto writer = OpLogWriter::Create(path, 4, 0, 0);
  const uint64_t header_bytes = writer->bytes();
  writer->Commit();
  EXPECT_EQ(writer->bytes(), header_bytes);
  EXPECT_EQ(fs::file_size(path), header_bytes);
}

TEST_F(OpLogTest, AbortLastDropsTheBufferedRecordOnly) {
  const std::string path = Path("t.oplog");
  auto writer = OpLogWriter::Create(path, 4, 0, 0);
  writer->BufferAppend(SampleRankings(4, 1, 3));
  writer->BufferRemove(0);
  writer->AbortLast();  // the remove's apply threw — retract it
  writer->Commit();
  const OpLogContents contents = ReadOpLogFile(path);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0].kind, OpRecord::Kind::kAppend);
}

TEST_F(OpLogTest, OpenExistingResumesAppending) {
  const std::string path = Path("t.oplog");
  {
    auto writer = OpLogWriter::Create(path, 5, 2, 1);
    writer->BufferAppend(SampleRankings(5, 2, 4));
    writer->Commit();
  }
  OpLogContents scanned;
  {
    auto writer = OpLogWriter::OpenExisting(path, 5, &scanned);
    EXPECT_EQ(scanned.records.size(), 1u);
    EXPECT_TRUE(scanned.torn_tail.empty());
    EXPECT_EQ(writer->base_generation(), 2u);
    EXPECT_EQ(writer->base_rankings(), 1u);
    EXPECT_EQ(writer->records(), 1u);
    writer->BufferRemove(0);
    writer->Commit();
    EXPECT_EQ(writer->records(), 2u);
  }
  EXPECT_EQ(ReadOpLogFile(path).records.size(), 2u);
  // Candidate-count mismatch: the log chains from a different table.
  EXPECT_THROW(OpLogWriter::OpenExisting(path, 9, nullptr),
               std::invalid_argument);
}

// ------------------------------------------------------ torn-tail sweep

TEST_F(OpLogTest, TruncationAtEveryByteOfFinalRecordRecoversThePrefix) {
  const std::string path = Path("t.oplog");
  {
    auto writer = OpLogWriter::Create(path, 5, 0, 0);
    writer->BufferAppend(SampleRankings(5, 1, 5));
    writer->BufferRemove(0);
    writer->BufferAppend(SampleRankings(5, 2, 6));
    writer->Commit();
  }
  const std::string full = ReadAllBytes(path);
  ASSERT_EQ(ReadOpLogFile(path).records.size(), 3u);
  // Find the clean boundary after record 2 (= the start of the final
  // record) by re-writing only the first two records.
  uint64_t boundary = 0;
  {
    const std::string probe = Path("probe.oplog");
    auto writer = OpLogWriter::Create(probe, 5, 0, 0);
    writer->BufferAppend(SampleRankings(5, 1, 5));
    writer->BufferRemove(0);
    writer->Commit();
    boundary = writer->bytes();
  }
  ASSERT_LT(boundary, full.size());
  const std::string cut_path = Path("cut.oplog");
  for (size_t cut = boundary; cut < full.size(); ++cut) {
    WriteAllBytes(cut_path, full.substr(0, cut));
    const OpLogContents contents = ReadOpLogFile(cut_path);
    ASSERT_EQ(contents.records.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(contents.clean_bytes, boundary) << "cut at byte " << cut;
    if (cut == boundary) {
      EXPECT_TRUE(contents.torn_tail.empty());
    } else {
      EXPECT_FALSE(contents.torn_tail.empty()) << "cut at byte " << cut;
    }
  }
  // The whole file, untruncated, still reads all three.
  EXPECT_EQ(ReadOpLogFile(path).records.size(), 3u);
}

TEST_F(OpLogTest, CorruptByteInFinalRecordIsATornTailNeverAWedge) {
  const std::string path = Path("t.oplog");
  uint64_t boundary = 0;
  {
    auto writer = OpLogWriter::Create(path, 4, 0, 0);
    writer->BufferAppend(SampleRankings(4, 1, 7));
    writer->Commit();
    boundary = writer->bytes();
    writer->BufferAppend(SampleRankings(4, 1, 8));
    writer->Commit();
  }
  const std::string full = ReadAllBytes(path);
  const std::string hurt_path = Path("hurt.oplog");
  for (size_t at = boundary; at < full.size(); ++at) {
    std::string hurt = full;
    hurt[at] = static_cast<char>(hurt[at] ^ 0x5a);
    WriteAllBytes(hurt_path, hurt);
    // A flipped byte breaks the record checksum (or its framing): the
    // reader reports a torn tail and hands back exactly the clean
    // prefix — it must never throw for tail damage.
    const OpLogContents contents = ReadOpLogFile(hurt_path);
    EXPECT_EQ(contents.records.size(), 1u) << "flip at byte " << at;
    EXPECT_FALSE(contents.torn_tail.empty()) << "flip at byte " << at;
    EXPECT_EQ(contents.clean_bytes, boundary) << "flip at byte " << at;
  }
}

TEST_F(OpLogTest, OpenExistingTruncatesTheTornTailInPlace) {
  const std::string path = Path("t.oplog");
  uint64_t boundary = 0;
  {
    auto writer = OpLogWriter::Create(path, 4, 0, 0);
    writer->BufferAppend(SampleRankings(4, 1, 9));
    writer->Commit();
    boundary = writer->bytes();
  }
  // Simulate a crash mid-append: garbage after the last clean record.
  WriteAllBytes(path, ReadAllBytes(path) + "\x07torn-garbage");
  OpLogContents scanned;
  auto writer = OpLogWriter::OpenExisting(path, 4, &scanned);
  EXPECT_FALSE(scanned.torn_tail.empty());
  EXPECT_EQ(scanned.records.size(), 1u);
  EXPECT_EQ(fs::file_size(path), boundary);  // truncated in place
  // Appending after the truncation frames cleanly.
  writer->BufferRemove(0);
  writer->Commit();
  const OpLogContents contents = ReadOpLogFile(path);
  EXPECT_TRUE(contents.torn_tail.empty());
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[1].kind, OpRecord::Kind::kRemove);
}

// --------------------------------------------------- incremental cursor

/// The every-offset truncation sweep again, but through the incremental
/// cursor — the shared verifier that cold start, crash recovery, and
/// follower catch-up all run on. A prefix cut at EVERY byte of the final
/// record must yield exactly the clean two-record prefix, with the tail
/// reported as incomplete (kNeedMore), never as corruption.
TEST_F(OpLogTest, CursorEveryOffsetTruncationSweepRecoversThePrefix) {
  const std::string path = Path("t.oplog");
  {
    auto writer = OpLogWriter::Create(path, 5, 0, 0);
    writer->BufferAppend(SampleRankings(5, 1, 5));
    writer->BufferRemove(0);
    writer->BufferAppend(SampleRankings(5, 2, 6));
    writer->Commit();
  }
  const std::string full = ReadAllBytes(path);
  uint64_t boundary = 0;
  {
    const std::string probe = Path("probe.oplog");
    auto writer = OpLogWriter::Create(probe, 5, 0, 0);
    writer->BufferAppend(SampleRankings(5, 1, 5));
    writer->BufferRemove(0);
    writer->Commit();
    boundary = writer->bytes();
  }
  ASSERT_LT(boundary, full.size());
  for (size_t cut = boundary; cut < full.size(); ++cut) {
    OpLogCursor cursor("sweep");
    cursor.Feed(full.data(), cut);
    OpRecord record;
    size_t yielded = 0;
    while (cursor.Next(&record) == OpLogCursor::Status::kRecord) ++yielded;
    EXPECT_EQ(yielded, 2u) << "cut at byte " << cut;
    EXPECT_EQ(cursor.Next(&record), OpLogCursor::Status::kNeedMore)
        << "cut at byte " << cut;
    EXPECT_EQ(cursor.clean_bytes(), boundary) << "cut at byte " << cut;
    EXPECT_EQ(cursor.pending_bytes(), cut - boundary) << "cut at byte "
                                                      << cut;
    if (cut == boundary) {
      EXPECT_TRUE(cursor.TornDetail().empty()) << "cut at byte " << cut;
    } else {
      EXPECT_FALSE(cursor.TornDetail().empty()) << "cut at byte " << cut;
    }
    // Feeding the withheld suffix completes the third record: a cut is
    // an *incomplete* frame, and the cursor resumes exactly where the
    // stream paused — the property follower tailing rides on.
    cursor.Feed(full.data() + cut, full.size() - cut);
    EXPECT_EQ(cursor.Next(&record), OpLogCursor::Status::kRecord)
        << "cut at byte " << cut;
    EXPECT_EQ(cursor.clean_bytes(), full.size()) << "cut at byte " << cut;
    EXPECT_EQ(cursor.Next(&record), OpLogCursor::Status::kNeedMore);
    EXPECT_TRUE(cursor.TornDetail().empty());
  }
}

/// Byte-at-a-time feeding (the worst possible packetization of a
/// replication stream) must yield exactly what the whole-file reader
/// sees: same header, same records, same clean boundary.
TEST_F(OpLogTest, CursorByteAtATimeFeedMatchesTheWholeFileReader) {
  const std::string path = Path("t.oplog");
  {
    auto writer = OpLogWriter::Create(path, 6, /*base_generation=*/4,
                                      /*base_rankings=*/2);
    writer->BufferAppend(SampleRankings(6, 2, 10));
    writer->BufferRemove(1);
    writer->BufferAppend(SampleRankings(6, 1, 11));
    writer->Commit();
  }
  const std::string full = ReadAllBytes(path);
  const OpLogContents slurped = ReadOpLogFile(path);
  OpLogCursor cursor(path);
  std::vector<OpRecord> streamed;
  for (size_t i = 0; i < full.size(); ++i) {
    cursor.Feed(full.data() + i, 1);
    OpRecord record;
    while (cursor.Next(&record) == OpLogCursor::Status::kRecord) {
      streamed.push_back(record);
    }
  }
  ASSERT_TRUE(cursor.header_ready());
  EXPECT_EQ(cursor.num_candidates(), slurped.num_candidates);
  EXPECT_EQ(cursor.base_generation(), slurped.base_generation);
  EXPECT_EQ(cursor.base_rankings(), slurped.base_rankings);
  EXPECT_EQ(cursor.clean_bytes(), slurped.clean_bytes);
  EXPECT_EQ(cursor.pending_bytes(), 0u);
  EXPECT_TRUE(cursor.TornDetail().empty());
  ASSERT_EQ(streamed.size(), slurped.records.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].kind, slurped.records[i].kind) << i;
    EXPECT_EQ(streamed[i].remove_index, slurped.records[i].remove_index)
        << i;
    ASSERT_EQ(streamed[i].rankings.size(), slurped.records[i].rankings.size())
        << i;
    for (size_t j = 0; j < streamed[i].rankings.size(); ++j) {
      EXPECT_EQ(streamed[i].rankings[j].order(),
                slurped.records[i].rankings[j].order())
          << i << "," << j;
    }
  }
}

/// A complete-but-corrupt frame is kTorn, kTorn is sticky, and feeding
/// more bytes never resurrects the stream — the follower's cue to drop
/// the connection and re-handshake rather than guess at a resync point.
TEST_F(OpLogTest, CursorTornStatusIsStickyAcrossFurtherFeeds) {
  const std::string path = Path("t.oplog");
  uint64_t boundary = 0;
  {
    auto writer = OpLogWriter::Create(path, 4, 0, 0);
    writer->BufferAppend(SampleRankings(4, 1, 12));
    writer->Commit();
    boundary = writer->bytes();
    writer->BufferAppend(SampleRankings(4, 1, 13));
    writer->BufferRemove(0);
    writer->Commit();
  }
  std::string hurt = ReadAllBytes(path);
  hurt[boundary + 5] = static_cast<char>(hurt[boundary + 5] ^ 0x5a);
  OpLogCursor cursor(path);
  cursor.Feed(hurt.data(), hurt.size());
  OpRecord record;
  ASSERT_EQ(cursor.Next(&record), OpLogCursor::Status::kRecord);
  EXPECT_EQ(cursor.Next(&record), OpLogCursor::Status::kTorn);
  EXPECT_EQ(cursor.clean_bytes(), boundary);
  EXPECT_FALSE(cursor.TornDetail().empty());
  // Sticky: more input (even the pristine bytes) changes nothing.
  const std::string clean = ReadAllBytes(path);
  cursor.Feed(clean.data(), clean.size());
  EXPECT_EQ(cursor.Next(&record), OpLogCursor::Status::kTorn);
  EXPECT_EQ(cursor.clean_bytes(), boundary);
  EXPECT_EQ(cursor.records(), 1u);
}

// ------------------------------------------------- corruption rejection

TEST_F(OpLogTest, HeaderDamageIsCorruptionNotATornTail) {
  const std::string path = Path("t.oplog");
  { OpLogWriter::Create(path, 4, 0, 0); }
  const std::string full = ReadAllBytes(path);
  const std::string hurt_path = Path("hurt.oplog");
  // Shorter than the header.
  WriteAllBytes(hurt_path, full.substr(0, kOpLogHeaderBytes - 1));
  EXPECT_THROW(ReadOpLogFile(hurt_path), OpLogFormatError);
  // Bad magic.
  std::string bad_magic = full;
  bad_magic[0] = 'X';
  WriteAllBytes(hurt_path, bad_magic);
  EXPECT_THROW(ReadOpLogFile(hurt_path), OpLogFormatError);
  // Flipped header checksum.
  std::string bad_crc = full;
  bad_crc[kOpLogHeaderBytes - 1] =
      static_cast<char>(bad_crc[kOpLogHeaderBytes - 1] ^ 0x5a);
  WriteAllBytes(hurt_path, bad_crc);
  EXPECT_THROW(ReadOpLogFile(hurt_path), OpLogFormatError);
}

TEST_F(OpLogTest, ChecksumValidButMalformedRecordIsCorruption) {
  const std::string path = Path("t.oplog");
  { OpLogWriter::Create(path, 4, 0, 0); }
  // Hand-craft a record with a VALID checksum but a nonsense kind: this
  // cannot be a partial-write artifact, so it must throw, not be
  // reported as a torn tail.
  std::string file = ReadAllBytes(path);
  std::string frame;
  PutU32(&frame, 1);           // length
  frame.push_back('\x07');     // kind 7: not APPEND, not REMOVE
  PutU64(&frame, Fnv1a64(frame.data(), frame.size()));
  WriteAllBytes(path, file + frame);
  EXPECT_THROW(ReadOpLogFile(path), OpLogFormatError);
}

// ------------------------------------------------- durable-file helpers

TEST_F(OpLogTest, DurableTempFileConvention) {
  EXPECT_TRUE(LooksLikeDurableTempFile("t.snap.tmp.123.4"));
  EXPECT_TRUE(LooksLikeDurableTempFile("t.oplog.tmp.99.0"));
  EXPECT_FALSE(LooksLikeDurableTempFile("t.snap"));
  EXPECT_FALSE(LooksLikeDurableTempFile("t.oplog"));
  EXPECT_FALSE(LooksLikeDurableTempFile("t.tmp.123"));       // no counter
  EXPECT_FALSE(LooksLikeDurableTempFile("t.tmp.abc.4"));     // non-digit pid
  EXPECT_FALSE(LooksLikeDurableTempFile("tmp.123.4"));       // no stem dot
  const std::string a = NextDurableTempPath(Path("x.snap"));
  const std::string b = NextDurableTempPath(Path("x.snap"));
  EXPECT_NE(a, b);  // unique per call, so writers never collide
  EXPECT_TRUE(LooksLikeDurableTempFile(fs::path(a).filename().string()));
}

TEST_F(OpLogTest, WriteCopyRenameDurablyRoundTrip) {
  const std::string src = Path("src.bin");
  WriteFileDurably(src, "payload-1");
  EXPECT_EQ(ReadAllBytes(src), "payload-1");
  WriteFileDurably(src, "payload-2");  // atomic replace
  EXPECT_EQ(ReadAllBytes(src), "payload-2");
  const std::string copy = Path("copy.bin");
  CopyFileDurably(src, copy);
  EXPECT_EQ(ReadAllBytes(copy), "payload-2");
  EXPECT_EQ(ReadAllBytes(src), "payload-2");  // source untouched
  const std::string moved = Path("moved.bin");
  RenameDurably(copy, moved);
  EXPECT_EQ(ReadAllBytes(moved), "payload-2");
  EXPECT_FALSE(fs::exists(copy));
  // No temp debris left behind by any of the above.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_FALSE(
        LooksLikeDurableTempFile(entry.path().filename().string()))
        << entry.path();
  }
}

// ------------------------------------------- DurabilityManager end-to-end

/// Drives the same request lines through a durable dispatcher and a
/// plain in-memory twin, asserting bit-identical responses throughout.
struct TwinHarness {
  ContextManager durable_manager;
  ContextManager twin_manager;
  std::optional<DurabilityManager> durability;
  std::optional<Dispatcher> durable;
  Dispatcher twin{&twin_manager};

  explicit TwinHarness(const std::string& dir) {
    durability.emplace(dir, &durable_manager);
    durability->Attach();
    durable.emplace(&durable_manager);
    durable->set_durability(&*durability, /*inline_policy_eval=*/true);
  }

  void Drive(const std::vector<std::string>& requests) {
    for (const std::string& request : requests) {
      ASSERT_EQ(StripOplogFields(durable->Handle(request)),
                StripOplogFields(twin.Handle(request)))
          << request;
    }
  }

  /// STATS gains oplog_* fields only on the durable side; everything
  /// before them must match bit-for-bit.
  static std::string StripOplogFields(std::string response) {
    const size_t at = response.find(" oplog_");
    if (at != std::string::npos) response.resize(at);
    return response;
  }
};

std::vector<std::string> DurabilityWorkload(int n) {
  std::vector<std::string> requests;
  requests.push_back("CREATE t CYCLIC " + std::to_string(n) + " 2 2");
  const auto rotation = [n](int r) {
    std::ostringstream os;
    for (int i = 0; i < n; ++i) {
      if (i != 0) os << ' ';
      os << (i + r) % n;
    }
    return os.str();
  };
  requests.push_back("APPEND t " + rotation(0));
  requests.push_back("APPEND t " + rotation(1) + " ; " + rotation(3));
  requests.push_back("FLUSH t");
  requests.push_back("APPEND t " + rotation(2));
  requests.push_back("REMOVE t 1");
  requests.push_back("FLUSH t");
  requests.push_back("APPEND t " + rotation(4) + " ; " + rotation(5) + " ; " +
                     rotation(1));
  requests.push_back("FLUSH t");
  return requests;
}

TEST_F(OpLogTest, ColdStartServesBitIdenticallyToANeverRestartedTwin) {
  TwinHarness harness(dir_);
  harness.Drive(DurabilityWorkload(7));
  const std::string reference = harness.twin.Handle("RUN t all");
  ASSERT_EQ(harness.durable->Handle("RUN t all"), reference);

  // Cold start a fresh process image from the durability dir alone.
  ContextManager restarted;
  DurabilityManager durability(dir_, &restarted);
  const auto report = durability.ColdStart();
  durability.Attach();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].table, "t");
  EXPECT_FALSE(report[0].summarized);
  EXPECT_TRUE(report[0].torn_tail.empty());
  EXPECT_GT(report[0].replayed_records, 0u);

  Dispatcher dispatcher(&restarted);
  dispatcher.set_durability(&durability, true);
  // The full sweep — the base-ranking baselines B2-B4 included — must be
  // bit-identical, and the restored profile must accept REMOVE.
  EXPECT_EQ(dispatcher.Handle("RUN t all"), reference);
  EXPECT_EQ(TwinHarness::StripOplogFields(dispatcher.Handle("STATS t")),
            TwinHarness::StripOplogFields(harness.twin.Handle("STATS t")));
  EXPECT_EQ(dispatcher.Handle("REMOVE t 0"), harness.twin.Handle("REMOVE t 0"));
  EXPECT_EQ(dispatcher.Handle("FLUSH t"), harness.twin.Handle("FLUSH t"));
  EXPECT_EQ(dispatcher.Handle("RUN t all"), harness.twin.Handle("RUN t all"));
}

TEST_F(OpLogTest, CrashWindowBetweenSnapshotAndTruncationHeals) {
  TwinHarness harness(dir_);
  harness.Drive(DurabilityWorkload(6));
  const std::string reference = harness.twin.Handle("RUN t all");
  ASSERT_EQ(harness.durable->Handle("RUN t all"), reference);

  // Simulate the crash landing between the snapshot write and the log
  // truncation: take the snapshot (which truncates), then put the OLD
  // log back — its records are already inside the new floor.
  const std::string log_path = dir_ + "/t.oplog";
  const std::string old_log = ReadAllBytes(log_path);
  harness.durability->SnapshotNow("t");
  WriteAllBytes(log_path, old_log);

  ContextManager restarted;
  DurabilityManager durability(dir_, &restarted);
  const auto report = durability.ColdStart();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_GT(report[0].skipped_records, 0u);  // the healed crash window
  EXPECT_EQ(report[0].replayed_records, 0u);
  Dispatcher dispatcher(&restarted);
  EXPECT_EQ(dispatcher.Handle("RUN t all"), reference);
}

TEST_F(OpLogTest, TornLogTailRestoresTheCleanPrefix) {
  TwinHarness harness(dir_);
  harness.Drive(DurabilityWorkload(6));
  // Cut the final bytes of the log: the last fold is lost (that is the
  // crash semantics — it may not have been acknowledged), everything
  // before it must come back.
  const std::string log_path = dir_ + "/t.oplog";
  const std::string full = ReadAllBytes(log_path);
  WriteAllBytes(log_path, full.substr(0, full.size() - 3));

  ContextManager restarted;
  DurabilityManager durability(dir_, &restarted);
  const auto report = durability.ColdStart();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_FALSE(report[0].torn_tail.empty());
  Dispatcher dispatcher(&restarted);
  const std::string response = dispatcher.Handle("STATS t");
  EXPECT_EQ(response.substr(0, 2), "OK") << response;
  // The torn fold held 3 rankings; the restored profile must hold
  // exactly the prefix (1 + 2 + 1 - 1 removed = 3).
  EXPECT_NE(response.find(" rankings=3 "), std::string::npos) << response;
}

TEST_F(OpLogTest, ColdStartRemovesCrashedWriterTempFiles) {
  WriteAllBytes(Path("t.snap.tmp.123.4"), "half-written debris");
  ContextManager manager;
  DurabilityManager durability(dir_, &manager);
  std::vector<std::string> removed;
  const auto report = durability.ColdStart(&removed);
  EXPECT_TRUE(report.empty());
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_FALSE(fs::exists(Path("t.snap.tmp.123.4")));
}

TEST_F(OpLogTest, OrphanedOpLogRefusesToBoot) {
  // A log with no snapshot floor cannot be a crash artifact (the floor
  // is written first, durably); silently ignoring it would serve less
  // than what was durably acknowledged.
  OpLogWriter::Create(Path("ghost.oplog"), 4, 0, 0);
  ContextManager manager;
  DurabilityManager durability(dir_, &manager);
  EXPECT_THROW(durability.ColdStart(), std::runtime_error);
}

// ------------------------------------------------ SNAPSHOT-POLICY verb

TEST_F(OpLogTest, SnapshotPolicyVerbValidation) {
  ContextManager manager;
  Dispatcher bare(&manager);
  EXPECT_EQ(bare.Handle("SNAPSHOT-POLICY t GENERATIONS 4").substr(0, 15),
            "ERR unavailable");

  DurabilityManager durability(dir_, &manager);
  durability.Attach();
  Dispatcher dispatcher(&manager);
  dispatcher.set_durability(&durability, true);
  EXPECT_EQ(dispatcher.Handle("SNAPSHOT-POLICY t GENERATIONS 4")
                .substr(0, 17),
            "ERR no-such-table");
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 4 2 2").substr(0, 2), "OK");
  EXPECT_EQ(dispatcher.Handle("SNAPSHOT-POLICY t GENERATIONS 4"),
            "OK SNAPSHOT-POLICY t GENERATIONS 4");
  EXPECT_EQ(dispatcher.Handle("SNAPSHOT-POLICY t SECONDS 1.5"),
            "OK SNAPSHOT-POLICY t SECONDS 1.5");
  EXPECT_GE(durability.NextDeadlineMs(), 0);  // a SECONDS timer is armed
  EXPECT_EQ(dispatcher.Handle("SNAPSHOT-POLICY t OFF"),
            "OK SNAPSHOT-POLICY t OFF");
  EXPECT_EQ(durability.NextDeadlineMs(), -1);
  for (const char* bad :
       {"SNAPSHOT-POLICY t GENERATIONS 0", "SNAPSHOT-POLICY t GENERATIONS -1",
        "SNAPSHOT-POLICY t SECONDS 0", "SNAPSHOT-POLICY t SECONDS nan",
        "SNAPSHOT-POLICY t EVERY 3", "SNAPSHOT-POLICY t", "SNAPSHOT-POLICY"}) {
    EXPECT_EQ(dispatcher.Handle(bad).substr(0, 3), "ERR") << bad;
  }
}

TEST_F(OpLogTest, GenerationsPolicyTruncatesTheLogInline) {
  ContextManager manager;
  DurabilityManager durability(dir_, &manager);
  durability.Attach();
  Dispatcher dispatcher(&manager);
  dispatcher.set_durability(&durability, true);
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 4 2 2").substr(0, 2), "OK");
  ASSERT_EQ(dispatcher.Handle("SNAPSHOT-POLICY t GENERATIONS 2").substr(0, 2),
            "OK");
  ASSERT_EQ(dispatcher.Handle("APPEND t 0 1 2 3 ; 1 2 3 0").substr(0, 2),
            "OK");
  ASSERT_EQ(dispatcher.Handle("FLUSH t").substr(0, 2), "OK");
  // The fold advanced the generation by 2 >= the policy threshold; the
  // inline evaluation after FLUSH must have truncated the log.
  const auto stats = durability.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->truncations, 1u);
  EXPECT_EQ(stats->log_records, 0u);  // fresh chain after the truncation
  EXPECT_TRUE(stats->healthy);
  // The truncated chain still cold-starts to the exact same profile.
  ContextManager restarted;
  DurabilityManager durability2(dir_, &restarted);
  durability2.ColdStart();
  Dispatcher check(&restarted);
  EXPECT_EQ(check.Handle("RUN t all"), dispatcher.Handle("RUN t all"));
}

TEST_F(OpLogTest, MetricsSuffixAggregatesOplogCounters) {
  ContextManager manager;
  DurabilityManager durability(dir_, &manager);
  durability.Attach();
  Dispatcher dispatcher(&manager);
  dispatcher.set_durability(&durability, true);
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 4 2 2").substr(0, 2), "OK");
  ASSERT_EQ(dispatcher.Handle("APPEND t 0 1 2 3").substr(0, 2), "OK");
  ASSERT_EQ(dispatcher.Handle("FLUSH t").substr(0, 2), "OK");
  const std::string suffix = durability.MetricsSuffix();
  EXPECT_NE(suffix.find(" oplog_tables=1"), std::string::npos) << suffix;
  EXPECT_NE(suffix.find(" oplog_records=1"), std::string::npos) << suffix;
  EXPECT_NE(suffix.find(" oplog_unhealthy=0"), std::string::npos) << suffix;
}

TEST_F(OpLogTest, DropRetiresTheDurableFiles) {
  ContextManager manager;
  DurabilityManager durability(dir_, &manager);
  durability.Attach();
  Dispatcher dispatcher(&manager);
  dispatcher.set_durability(&durability, true);
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 4 2 2").substr(0, 2), "OK");
  EXPECT_TRUE(fs::exists(dir_ + "/t.snap"));
  EXPECT_TRUE(fs::exists(dir_ + "/t.oplog"));
  ASSERT_EQ(dispatcher.Handle("DROP t").substr(0, 2), "OK");
  // A restart must not resurrect the dropped table.
  EXPECT_FALSE(fs::exists(dir_ + "/t.snap"));
  EXPECT_FALSE(fs::exists(dir_ + "/t.oplog"));
  ContextManager restarted;
  DurabilityManager durability2(dir_, &restarted);
  EXPECT_TRUE(durability2.ColdStart().empty());
}

TEST_F(OpLogTest, DurableTableNamesRejectPathTricks) {
  EXPECT_TRUE(serve::IsDurableTableName("t"));
  EXPECT_TRUE(serve::IsDurableTableName("table_2.v1"));
  EXPECT_FALSE(serve::IsDurableTableName(""));
  EXPECT_FALSE(serve::IsDurableTableName("."));
  EXPECT_FALSE(serve::IsDurableTableName(".."));
  EXPECT_FALSE(serve::IsDurableTableName("a/b"));
  EXPECT_FALSE(serve::IsDurableTableName("a\\b"));
  EXPECT_FALSE(serve::IsDurableTableName(std::string("a\0b", 3)));
  // And the manager refuses to CREATE one while durability is attached.
  ContextManager manager;
  DurabilityManager durability(dir_, &manager);
  durability.Attach();
  Dispatcher dispatcher(&manager);
  dispatcher.set_durability(&durability, true);
  EXPECT_EQ(dispatcher.Handle("CREATE ../evil CYCLIC 4 2 2").substr(0, 3),
            "ERR");
  EXPECT_FALSE(manager.Has("../evil"));
}

}  // namespace
}  // namespace manirank
