// Forced-kernel equivalence suite for the bit-sliced precedence path.
//
// The contract under test: every kernel flavor (scalar reference, portable
// bit-sliced, AVX2 bit-sliced where the CPU has it) produces bit-identical
// matrices on every eligible input — builds, batch folds, negative-weight
// batch removals, interleavings with scalar deltas — and the ineligible
// cases (non-unit weights, cells near the 2^53 exact-integer envelope)
// loudly degrade to the scalar path with identical results.
//
// MANIRANK_KERNEL is re-read on every build/batch, so each test simply
// sets the variable around the calls it wants forced. Tests run
// single-threaded at the point of setenv (ParallelFor workers only read
// the resolved kernel), matching the documented contract.

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/precedence.h"
#include "core/ranking.h"
#include "test_util.h"
#include "util/cpu_dispatch.h"
#include "util/rng.h"

namespace manirank {
namespace {

using ::manirank::testing::AllPrecedenceKernels;
using ::manirank::testing::RandomRanking;
using ::manirank::testing::ScopedKernelEnv;

std::vector<Ranking> RandomProfile(int n, int m, Rng* rng) {
  std::vector<Ranking> profile;
  profile.reserve(m);
  for (int i = 0; i < m; ++i) profile.push_back(RandomRanking(n, rng));
  return profile;
}

TEST(PrecedenceKernelTest, ActiveKernelNameTracksEnv) {
  {
    ScopedKernelEnv env("scalar");
    EXPECT_STREQ(PrecedenceMatrix::ActiveKernelName(), "scalar");
  }
  {
    ScopedKernelEnv env("portable");
    EXPECT_STREQ(PrecedenceMatrix::ActiveKernelName(), "portable");
  }
  if (CpuSupportsAvx2()) {
    ScopedKernelEnv env("avx2");
    EXPECT_STREQ(PrecedenceMatrix::ActiveKernelName(), "avx2");
  }
  {
    // Auto resolves to one of the bit-sliced flavors, never scalar.
    ScopedKernelEnv env(nullptr);
    const std::string name = PrecedenceMatrix::ActiveKernelName();
    EXPECT_TRUE(name == "portable" || name == "avx2") << name;
  }
}

TEST(PrecedenceKernelTest, UnknownKernelValueFallsBackToAuto) {
  ScopedKernelEnv forced("definitely-not-a-kernel");
  const std::string name = PrecedenceMatrix::ActiveKernelName();
  EXPECT_TRUE(name == "portable" || name == "avx2") << name;
  Rng rng(11);
  const std::vector<Ranking> base = RandomProfile(70, 9, &rng);
  const PrecedenceMatrix built = PrecedenceMatrix::Build(base);
  ScopedKernelEnv scalar("scalar");
  EXPECT_EQ(built.ToDense(), PrecedenceMatrix::Build(base).ToDense());
}

// Build across sizes straddling every word/block boundary (n at 63/64/65,
// two-block 100/130, multi-block 200) and batch boundary (m at 64/65/130)
// must match the scalar reference exactly.
TEST(PrecedenceKernelTest, BuildMatchesScalarAcrossSizes) {
  Rng rng(7);
  for (int n : {1, 2, 3, 63, 64, 65, 100, 130, 200}) {
    for (int m : {1, 5, 64, 65, 130}) {
      const std::vector<Ranking> base = RandomProfile(n, m, &rng);
      std::vector<std::vector<double>> reference;
      {
        ScopedKernelEnv env("scalar");
        reference = PrecedenceMatrix::Build(base).ToDense();
      }
      for (const std::string& kernel : AllPrecedenceKernels()) {
        ScopedKernelEnv env(kernel.c_str());
        EXPECT_EQ(PrecedenceMatrix::Build(base).ToDense(), reference)
            << "kernel=" << kernel << " n=" << n << " m=" << m;
      }
    }
  }
}

// A batch fold onto a warm (non-zero) matrix equals folding the same
// rankings one at a time through the scalar per-pair loop.
TEST(PrecedenceKernelTest, AddRankingsBatchMatchesScalarFolds) {
  Rng rng(19);
  const int n = 90;
  const std::vector<Ranking> warm = RandomProfile(n, 37, &rng);
  for (int batch_size : {1, 63, 64, 65, 200}) {
    const std::vector<Ranking> batch = RandomProfile(n, batch_size, &rng);
    std::vector<std::vector<double>> reference;
    {
      ScopedKernelEnv env("scalar");
      PrecedenceMatrix w = PrecedenceMatrix::Build(warm);
      for (const Ranking& r : batch) w.AddRanking(r);
      reference = w.ToDense();
    }
    for (const std::string& kernel : AllPrecedenceKernels()) {
      ScopedKernelEnv env(kernel.c_str());
      PrecedenceMatrix w = PrecedenceMatrix::Build(warm);
      w.AddRankingsBatch(batch);
      EXPECT_EQ(w.ToDense(), reference)
          << "kernel=" << kernel << " batch=" << batch_size;
    }
  }
}

// RemoveRankingsBatch is AddRankingsBatch at weight -1: adding a batch and
// removing it again restores the original bits exactly, under every kernel.
TEST(PrecedenceKernelTest, BatchRemoveRoundTripsExactly) {
  Rng rng(23);
  const int n = 130;
  const std::vector<Ranking> warm = RandomProfile(n, 20, &rng);
  const std::vector<Ranking> batch = RandomProfile(n, 96, &rng);
  for (const std::string& kernel : AllPrecedenceKernels()) {
    ScopedKernelEnv env(kernel.c_str());
    PrecedenceMatrix w = PrecedenceMatrix::Build(warm);
    const std::vector<std::vector<double>> before = w.ToDense();
    w.AddRankingsBatch(batch);
    w.RemoveRankingsBatch(batch);
    EXPECT_EQ(w.ToDense(), before) << "kernel=" << kernel;
  }
}

// Random interleavings of batch folds, batch removals, and scalar
// single-ranking deltas must land on the bits of a scalar rebuild over the
// surviving profile.
TEST(PrecedenceKernelTest, InterleavedBatchAndScalarDeltasMatchRebuild) {
  const int n = 75;
  for (const std::string& kernel : AllPrecedenceKernels()) {
    Rng rng(31);  // same op sequence per kernel
    ScopedKernelEnv env(kernel.c_str());
    PrecedenceMatrix w = PrecedenceMatrix::Zero(n);
    std::vector<Ranking> alive;
    for (int step = 0; step < 12; ++step) {
      const uint64_t op = rng.NextUint64(3);
      if (op == 0) {  // batch add
        const std::vector<Ranking> batch =
            RandomProfile(n, 1 + static_cast<int>(rng.NextUint64(70)), &rng);
        w.AddRankingsBatch(batch);
        alive.insert(alive.end(), batch.begin(), batch.end());
      } else if (op == 1 && alive.size() >= 8) {  // batch remove a suffix
        const size_t count = 1 + rng.NextUint64(alive.size() / 2);
        w.RemoveRankingsBatch(&alive[alive.size() - count], count);
        alive.resize(alive.size() - count);
      } else {  // scalar single-ranking delta
        alive.push_back(RandomRanking(n, &rng));
        w.AddRanking(alive.back());
      }
    }
    ScopedKernelEnv scalar("scalar");
    EXPECT_EQ(w.ToDense(), PrecedenceMatrix::Build(alive).ToDense())
        << "kernel=" << kernel;
  }
}

// Non-unit (and non-integer) batch weights are ineligible for the
// bit-sliced path; the fallback must still produce the scalar bits.
TEST(PrecedenceKernelTest, NonUnitWeightBatchFallsBackToScalarBits) {
  Rng rng(41);
  const int n = 66;
  const std::vector<Ranking> batch = RandomProfile(n, 80, &rng);
  std::vector<std::vector<double>> reference;
  {
    ScopedKernelEnv env("scalar");
    PrecedenceMatrix w = PrecedenceMatrix::Zero(n);
    for (const Ranking& r : batch) w.AddRanking(r, 2.5);
    reference = w.ToDense();
  }
  for (const std::string& kernel : AllPrecedenceKernels()) {
    ScopedKernelEnv env(kernel.c_str());
    PrecedenceMatrix w = PrecedenceMatrix::Zero(n);
    w.AddRankingsBatch(batch, 2.5);
    EXPECT_EQ(w.ToDense(), reference) << "kernel=" << kernel;
  }
}

// Once a non-integer weight has touched the matrix, later unit batches
// must also take the scalar path (collapsing 64 adds into one is no longer
// bit-identical against a fractional cell) — equivalence is against the
// scalar per-ranking fold sequence, not the collapsed add.
TEST(PrecedenceKernelTest, FractionalCellsForceScalarBatchSemantics) {
  Rng rng(43);
  const int n = 70;
  const Ranking fractional = RandomRanking(n, &rng);
  const std::vector<Ranking> batch = RandomProfile(n, 64, &rng);
  std::vector<std::vector<double>> reference;
  {
    ScopedKernelEnv env("scalar");
    PrecedenceMatrix w = PrecedenceMatrix::Zero(n);
    w.AddRanking(fractional, 0.1);
    for (const Ranking& r : batch) w.AddRanking(r);
    reference = w.ToDense();
  }
  for (const std::string& kernel : AllPrecedenceKernels()) {
    ScopedKernelEnv env(kernel.c_str());
    PrecedenceMatrix w = PrecedenceMatrix::Zero(n);
    w.AddRanking(fractional, 0.1);
    w.AddRankingsBatch(batch);
    EXPECT_EQ(w.ToDense(), reference) << "kernel=" << kernel;
  }
}

// A matrix restored from dense cells near the 2^53 exact-integer envelope
// must refuse the collapsed batch add (cells would cross the envelope
// mid-batch under per-ranking folds) and still match the scalar sequence.
TEST(PrecedenceKernelTest, NearExactIntegerLimitFallsBackToScalarBits) {
  Rng rng(47);
  const int n = 12;
  const double near_limit = PrecedenceMatrix::kExactIntegerLimit - 32.0;
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, near_limit));
  for (int a = 0; a < n; ++a) dense[a][a] = 0.0;
  const std::vector<Ranking> batch = RandomProfile(n, 64, &rng);
  std::vector<std::vector<double>> reference;
  {
    ScopedKernelEnv env("scalar");
    PrecedenceMatrix w{dense};
    for (const Ranking& r : batch) w.AddRanking(r);
    reference = w.ToDense();
  }
  for (const std::string& kernel : AllPrecedenceKernels()) {
    ScopedKernelEnv env(kernel.c_str());
    PrecedenceMatrix w{dense};
    w.AddRankingsBatch(batch);
    EXPECT_EQ(w.ToDense(), reference) << "kernel=" << kernel;
  }
}

// A dense restore of ordinary integer cells (the snapshot path) stays
// batch-eligible: batches folded after a restore match the scalar bits.
TEST(PrecedenceKernelTest, DenseRestoreKeepsBatchPathExact) {
  Rng rng(53);
  const int n = 80;
  const std::vector<Ranking> original = RandomProfile(n, 30, &rng);
  const std::vector<Ranking> appended = RandomProfile(n, 64, &rng);
  std::vector<std::vector<double>> reference;
  {
    ScopedKernelEnv env("scalar");
    PrecedenceMatrix restored{PrecedenceMatrix::Build(original).ToDense()};
    for (const Ranking& r : appended) restored.AddRanking(r);
    reference = restored.ToDense();
  }
  for (const std::string& kernel : AllPrecedenceKernels()) {
    ScopedKernelEnv env(kernel.c_str());
    PrecedenceMatrix restored{PrecedenceMatrix::Build(original).ToDense()};
    restored.AddRankingsBatch(appended);
    EXPECT_EQ(restored.ToDense(), reference) << "kernel=" << kernel;
  }
}

// Merging per-worker deltas built under different kernels is still exact:
// the bit-sliced and scalar paths produce the same integer cells, so any
// mix merges to the bits of a scalar build over the union.
TEST(PrecedenceKernelTest, MergeAcrossKernelsMatchesScalarUnion) {
  Rng rng(59);
  const int n = 100;
  const std::vector<Ranking> left = RandomProfile(n, 70, &rng);
  const std::vector<Ranking> right = RandomProfile(n, 66, &rng);
  std::vector<Ranking> all = left;
  all.insert(all.end(), right.begin(), right.end());
  std::vector<std::vector<double>> reference;
  {
    ScopedKernelEnv env("scalar");
    reference = PrecedenceMatrix::Build(all).ToDense();
  }
  const std::vector<std::string> kernels = AllPrecedenceKernels();
  for (size_t i = 0; i < kernels.size(); ++i) {
    PrecedenceMatrix a = PrecedenceMatrix::Zero(n);
    PrecedenceMatrix b = PrecedenceMatrix::Zero(n);
    {
      ScopedKernelEnv env(kernels[i].c_str());
      a.AddRankingsBatch(left);
    }
    {
      ScopedKernelEnv env(kernels[(i + 1) % kernels.size()].c_str());
      b.AddRankingsBatch(right);
    }
    a.Merge(b);
    EXPECT_EQ(a.ToDense(), reference)
        << "kernels " << kernels[i] << " + "
        << kernels[(i + 1) % kernels.size()];
  }
}

// KemenyCost and LowerBound (the cache-friendly rewrites) agree with a
// brute-force pairwise traversal on matrices from every kernel.
TEST(PrecedenceKernelTest, CostAndBoundMatchBruteForceUnderAllKernels) {
  Rng rng(61);
  const int n = 130;  // straddles a 64-column tile boundary
  const std::vector<Ranking> base = RandomProfile(n, 25, &rng);
  const Ranking consensus = RandomRanking(n, &rng);
  for (const std::string& kernel : AllPrecedenceKernels()) {
    ScopedKernelEnv env(kernel.c_str());
    const PrecedenceMatrix w = PrecedenceMatrix::Build(base);
    double brute_cost = 0.0;
    for (int pa = 0; pa < n; ++pa) {
      for (int pb = pa + 1; pb < n; ++pb) {
        brute_cost += w.W(consensus.At(pa), consensus.At(pb));
      }
    }
    EXPECT_DOUBLE_EQ(w.KemenyCost(consensus), brute_cost)
        << "kernel=" << kernel;
    double brute_bound = 0.0;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        brute_bound += std::min(w.W(a, b), w.W(b, a));
      }
    }
    EXPECT_DOUBLE_EQ(w.LowerBound(), brute_bound) << "kernel=" << kernel;
  }
}

}  // namespace
}  // namespace manirank
