#include "core/precedence.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

TEST(PrecedenceTest, SingleRankingCounts) {
  // Ranking [1, 0, 2]: 1 above 0 and 2; 0 above 2.
  std::vector<Ranking> base = {Ranking({1, 0, 2})};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  // W[a][b] = #rankings placing b above a.
  EXPECT_DOUBLE_EQ(w.W(0, 1), 1.0);  // 1 is above 0
  EXPECT_DOUBLE_EQ(w.W(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(w.W(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.W(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.PrefersCount(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.PrefersCount(0, 1), 0.0);
}

TEST(PrecedenceTest, PairCountsSumToProfileSize) {
  Rng rng(3);
  std::vector<Ranking> base;
  for (int i = 0; i < 9; ++i) base.push_back(testing::RandomRanking(7, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  for (CandidateId a = 0; a < 7; ++a) {
    for (CandidateId b = a + 1; b < 7; ++b) {
      // Every ranking orders each pair one way or the other.
      EXPECT_DOUBLE_EQ(w.W(a, b) + w.W(b, a), 9.0);
    }
    EXPECT_DOUBLE_EQ(w.W(a, a), 0.0);
  }
}

TEST(PrecedenceTest, KemenyCostEqualsSummedKendallTau) {
  Rng rng(5);
  std::vector<Ranking> base;
  for (int i = 0; i < 6; ++i) base.push_back(testing::RandomRanking(9, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  Ranking consensus = testing::RandomRanking(9, &rng);
  int64_t kt_sum = 0;
  for (const Ranking& r : base) kt_sum += KendallTau(consensus, r);
  EXPECT_DOUBLE_EQ(w.KemenyCost(consensus), static_cast<double>(kt_sum));
}

TEST(PrecedenceTest, WeightedBuildScalesCounts) {
  std::vector<Ranking> base = {Ranking({0, 1}), Ranking({1, 0})};
  PrecedenceMatrix w = PrecedenceMatrix::BuildWeighted(base, {3.0, 5.0});
  EXPECT_DOUBLE_EQ(w.W(1, 0), 3.0);  // first ranking puts 0 above 1
  EXPECT_DOUBLE_EQ(w.W(0, 1), 5.0);
}

TEST(PrecedenceTest, WeightedWithUnitWeightsMatchesUnweighted) {
  Rng rng(7);
  std::vector<Ranking> base;
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(8, &rng));
  PrecedenceMatrix a = PrecedenceMatrix::Build(base);
  PrecedenceMatrix b =
      PrecedenceMatrix::BuildWeighted(base, std::vector<double>(5, 1.0));
  for (CandidateId x = 0; x < 8; ++x) {
    for (CandidateId y = 0; y < 8; ++y) {
      EXPECT_DOUBLE_EQ(a.W(x, y), b.W(x, y));
    }
  }
}

TEST(PrecedenceTest, LowerBoundIsBelowEveryRankingCost) {
  Rng rng(11);
  std::vector<Ranking> base;
  for (int i = 0; i < 8; ++i) base.push_back(testing::RandomRanking(6, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  const double bound = w.LowerBound();
  for (int trial = 0; trial < 30; ++trial) {
    Ranking r = testing::RandomRanking(6, &rng);
    ASSERT_LE(bound, w.KemenyCost(r) + 1e-9);
  }
}

TEST(PrecedenceTest, ParallelBuildIsDeterministic) {
  Rng rng(13);
  std::vector<Ranking> base;
  for (int i = 0; i < 200; ++i) base.push_back(testing::RandomRanking(20, &rng));
  PrecedenceMatrix w1 = PrecedenceMatrix::Build(base);
  PrecedenceMatrix w2 = PrecedenceMatrix::Build(base);
  for (CandidateId a = 0; a < 20; ++a) {
    for (CandidateId b = 0; b < 20; ++b) {
      ASSERT_DOUBLE_EQ(w1.W(a, b), w2.W(a, b));
    }
  }
}

TEST(PrecedenceTest, ToDenseRoundTrips) {
  Rng rng(17);
  std::vector<Ranking> base;
  for (int i = 0; i < 4; ++i) base.push_back(testing::RandomRanking(5, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  PrecedenceMatrix copy(w.ToDense());
  for (CandidateId a = 0; a < 5; ++a) {
    for (CandidateId b = 0; b < 5; ++b) {
      EXPECT_DOUBLE_EQ(copy.W(a, b), w.W(a, b));
    }
  }
}

}  // namespace
}  // namespace manirank
