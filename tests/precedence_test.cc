#include "core/precedence.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/distance.h"
#include "mallows/mallows.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

TEST(PrecedenceTest, SingleRankingCounts) {
  // Ranking [1, 0, 2]: 1 above 0 and 2; 0 above 2.
  std::vector<Ranking> base = {Ranking({1, 0, 2})};
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  // W[a][b] = #rankings placing b above a.
  EXPECT_DOUBLE_EQ(w.W(0, 1), 1.0);  // 1 is above 0
  EXPECT_DOUBLE_EQ(w.W(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(w.W(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.W(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.PrefersCount(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.PrefersCount(0, 1), 0.0);
}

TEST(PrecedenceTest, PairCountsSumToProfileSize) {
  Rng rng(3);
  std::vector<Ranking> base;
  for (int i = 0; i < 9; ++i) base.push_back(testing::RandomRanking(7, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  for (CandidateId a = 0; a < 7; ++a) {
    for (CandidateId b = a + 1; b < 7; ++b) {
      // Every ranking orders each pair one way or the other.
      EXPECT_DOUBLE_EQ(w.W(a, b) + w.W(b, a), 9.0);
    }
    EXPECT_DOUBLE_EQ(w.W(a, a), 0.0);
  }
}

TEST(PrecedenceTest, KemenyCostEqualsSummedKendallTau) {
  Rng rng(5);
  std::vector<Ranking> base;
  for (int i = 0; i < 6; ++i) base.push_back(testing::RandomRanking(9, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  Ranking consensus = testing::RandomRanking(9, &rng);
  int64_t kt_sum = 0;
  for (const Ranking& r : base) kt_sum += KendallTau(consensus, r);
  EXPECT_DOUBLE_EQ(w.KemenyCost(consensus), static_cast<double>(kt_sum));
}

TEST(PrecedenceTest, WeightedBuildScalesCounts) {
  std::vector<Ranking> base = {Ranking({0, 1}), Ranking({1, 0})};
  PrecedenceMatrix w = PrecedenceMatrix::BuildWeighted(base, {3.0, 5.0});
  EXPECT_DOUBLE_EQ(w.W(1, 0), 3.0);  // first ranking puts 0 above 1
  EXPECT_DOUBLE_EQ(w.W(0, 1), 5.0);
}

TEST(PrecedenceTest, WeightedWithUnitWeightsMatchesUnweighted) {
  Rng rng(7);
  std::vector<Ranking> base;
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(8, &rng));
  PrecedenceMatrix a = PrecedenceMatrix::Build(base);
  PrecedenceMatrix b =
      PrecedenceMatrix::BuildWeighted(base, std::vector<double>(5, 1.0));
  for (CandidateId x = 0; x < 8; ++x) {
    for (CandidateId y = 0; y < 8; ++y) {
      EXPECT_DOUBLE_EQ(a.W(x, y), b.W(x, y));
    }
  }
}

TEST(PrecedenceTest, LowerBoundIsBelowEveryRankingCost) {
  Rng rng(11);
  std::vector<Ranking> base;
  for (int i = 0; i < 8; ++i) base.push_back(testing::RandomRanking(6, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  const double bound = w.LowerBound();
  for (int trial = 0; trial < 30; ++trial) {
    Ranking r = testing::RandomRanking(6, &rng);
    ASSERT_LE(bound, w.KemenyCost(r) + 1e-9);
  }
}

TEST(PrecedenceTest, ParallelBuildIsDeterministic) {
  Rng rng(13);
  std::vector<Ranking> base;
  for (int i = 0; i < 200; ++i) base.push_back(testing::RandomRanking(20, &rng));
  PrecedenceMatrix w1 = PrecedenceMatrix::Build(base);
  PrecedenceMatrix w2 = PrecedenceMatrix::Build(base);
  for (CandidateId a = 0; a < 20; ++a) {
    for (CandidateId b = 0; b < 20; ++b) {
      ASSERT_DOUBLE_EQ(w1.W(a, b), w2.W(a, b));
    }
  }
}

TEST(PrecedenceTest, BuildWeightedMatchesBruteForcePairCountingOnMallows) {
  // Definition 11 by brute force: W[a][b] is the total weight of rankings
  // placing b above a, validated on Mallows profiles across spreads.
  for (double theta : {0.2, 0.6, 1.0}) {
    const int n = 11;
    Rng rng(31 + static_cast<uint64_t>(theta * 10));
    MallowsModel model(testing::RandomRanking(n, &rng), theta);
    std::vector<Ranking> base = model.SampleMany(17, /*seed=*/33);
    std::vector<double> weights(base.size());
    for (size_t i = 0; i < weights.size(); ++i) {
      weights[i] = rng.NextDouble() * 4.0;
    }
    PrecedenceMatrix w = PrecedenceMatrix::BuildWeighted(base, weights);
    for (CandidateId a = 0; a < n; ++a) {
      for (CandidateId b = 0; b < n; ++b) {
        double expected = 0.0;
        for (size_t i = 0; i < base.size(); ++i) {
          if (a != b && base[i].Prefers(b, a)) expected += weights[i];
        }
        ASSERT_DOUBLE_EQ(w.W(a, b), expected)
            << "theta=" << theta << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(PrecedenceTest, LowerBoundMatchesBruteForcePairMinimaOnMallows) {
  // LowerBound = sum over unordered pairs of min(W[a][b], W[b][a]),
  // recomputed here from raw pair counts.
  for (double theta : {0.1, 0.5, 0.9}) {
    const int n = 9;
    Rng rng(47 + static_cast<uint64_t>(theta * 10));
    MallowsModel model(testing::RandomRanking(n, &rng), theta);
    std::vector<Ranking> base = model.SampleMany(13, /*seed=*/49);
    PrecedenceMatrix w = PrecedenceMatrix::Build(base);
    double expected = 0.0;
    for (CandidateId a = 0; a < n; ++a) {
      for (CandidateId b = a + 1; b < n; ++b) {
        int prefers_a = 0;  // rankings placing a above b
        for (const Ranking& r : base) prefers_a += r.Prefers(a, b) ? 1 : 0;
        const int prefers_b = static_cast<int>(base.size()) - prefers_a;
        // min(W[a][b], W[b][a]) = min(#above(b,a), #above(a,b)).
        expected += std::min(prefers_a, prefers_b);
      }
    }
    EXPECT_DOUBLE_EQ(w.LowerBound(), expected) << "theta=" << theta;
    // And the bound is attained by no ranking costing less.
    for (int trial = 0; trial < 20; ++trial) {
      Ranking r = testing::RandomRanking(n, &rng);
      ASSERT_LE(w.LowerBound(), w.KemenyCost(r) + 1e-9);
    }
  }
}

TEST(PrecedenceTest, IncrementalAddMatchesBuild) {
  // Zero + AddRanking over the profile is bit-identical to Build (unit
  // weights are exactly representable, so fold order cannot matter).
  Rng rng(19);
  const int n = 13;
  std::vector<Ranking> base;
  for (int i = 0; i < 25; ++i) base.push_back(testing::RandomRanking(n, &rng));
  PrecedenceMatrix built = PrecedenceMatrix::Build(base);
  PrecedenceMatrix incremental = PrecedenceMatrix::Zero(n);
  for (const Ranking& r : base) incremental.AddRanking(r);
  EXPECT_EQ(incremental.ToDense(), built.ToDense());
}

TEST(PrecedenceTest, AddThenRemoveRoundTripsExactly) {
  // Any interleaving of adds and removes lands on the matrix of the
  // surviving profile, bit for bit.
  Rng rng(23);
  const int n = 10;
  std::vector<Ranking> keep, churn;
  for (int i = 0; i < 12; ++i) keep.push_back(testing::RandomRanking(n, &rng));
  for (int i = 0; i < 7; ++i) churn.push_back(testing::RandomRanking(n, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Zero(n);
  for (size_t i = 0; i < keep.size(); ++i) {
    w.AddRanking(keep[i]);
    if (i < churn.size()) w.AddRanking(churn[i]);
  }
  for (const Ranking& r : churn) w.RemoveRanking(r);
  EXPECT_EQ(w.ToDense(), PrecedenceMatrix::Build(keep).ToDense());
}

TEST(PrecedenceTest, WeightedAddAndRemoveScaleCounts) {
  PrecedenceMatrix w = PrecedenceMatrix::Zero(2);
  w.AddRanking(Ranking({0, 1}), 3.0);
  w.AddRanking(Ranking({1, 0}), 5.0);
  EXPECT_DOUBLE_EQ(w.W(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(w.W(0, 1), 5.0);
  w.RemoveRanking(Ranking({1, 0}), 5.0);
  EXPECT_DOUBLE_EQ(w.W(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(w.W(1, 0), 3.0);
}

TEST(PrecedenceTest, MergeSumsPerWorkerDeltas) {
  Rng rng(29);
  const int n = 8;
  std::vector<Ranking> base;
  for (int i = 0; i < 10; ++i) base.push_back(testing::RandomRanking(n, &rng));
  // Fold the profile across three disjoint "worker" deltas, then merge.
  PrecedenceMatrix merged = PrecedenceMatrix::Zero(n);
  for (int worker = 0; worker < 3; ++worker) {
    PrecedenceMatrix local = PrecedenceMatrix::Zero(n);
    for (size_t i = worker; i < base.size(); i += 3) local.AddRanking(base[i]);
    merged.Merge(local);
  }
  EXPECT_EQ(merged.ToDense(), PrecedenceMatrix::Build(base).ToDense());
}

TEST(PrecedenceTest, ToDenseRoundTrips) {
  Rng rng(17);
  std::vector<Ranking> base;
  for (int i = 0; i < 4; ++i) base.push_back(testing::RandomRanking(5, &rng));
  PrecedenceMatrix w = PrecedenceMatrix::Build(base);
  PrecedenceMatrix copy(w.ToDense());
  for (CandidateId a = 0; a < 5; ++a) {
    for (CandidateId b = 0; b < 5; ++b) {
      EXPECT_DOUBLE_EQ(copy.W(a, b), w.W(a, b));
    }
  }
}

}  // namespace
}  // namespace manirank
