#include "core/ranking.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

TEST(RankingTest, IdentityPositions) {
  Ranking r = Ranking::Identity(5);
  EXPECT_EQ(r.size(), 5);
  for (int p = 0; p < 5; ++p) {
    EXPECT_EQ(r.At(p), p);
    EXPECT_EQ(r.PositionOf(p), p);
  }
}

TEST(RankingTest, ConstructFromOrder) {
  Ranking r({2, 0, 1});
  EXPECT_EQ(r.At(0), 2);
  EXPECT_EQ(r.At(1), 0);
  EXPECT_EQ(r.At(2), 1);
  EXPECT_EQ(r.PositionOf(2), 0);
  EXPECT_EQ(r.PositionOf(0), 1);
  EXPECT_EQ(r.PositionOf(1), 2);
}

TEST(RankingTest, PrefersTopOverBottom) {
  Ranking r({3, 1, 0, 2});
  EXPECT_TRUE(r.Prefers(3, 2));
  EXPECT_TRUE(r.Prefers(1, 0));
  EXPECT_FALSE(r.Prefers(2, 3));
  EXPECT_FALSE(r.Prefers(0, 1));
}

TEST(RankingTest, IsValidOrderDetectsBadInput) {
  EXPECT_TRUE(Ranking::IsValidOrder({0, 1, 2}));
  EXPECT_TRUE(Ranking::IsValidOrder({}));
  EXPECT_FALSE(Ranking::IsValidOrder({0, 0, 1}));   // duplicate
  EXPECT_FALSE(Ranking::IsValidOrder({0, 1, 3}));   // out of range
  EXPECT_FALSE(Ranking::IsValidOrder({-1, 0, 1}));  // negative
}

TEST(RankingTest, SwapPositionsKeepsInverseInSync) {
  Ranking r({0, 1, 2, 3});
  r.SwapPositions(0, 3);
  EXPECT_EQ(r.At(0), 3);
  EXPECT_EQ(r.At(3), 0);
  EXPECT_EQ(r.PositionOf(3), 0);
  EXPECT_EQ(r.PositionOf(0), 3);
  EXPECT_EQ(r.PositionOf(1), 1);
}

TEST(RankingTest, SwapCandidates) {
  Ranking r({4, 3, 2, 1, 0});
  r.SwapCandidates(4, 0);
  EXPECT_EQ(r.At(0), 0);
  EXPECT_EQ(r.At(4), 4);
}

TEST(RankingTest, DoubleSwapIsIdentity) {
  Rng rng(3);
  Ranking r = testing::RandomRanking(20, &rng);
  const Ranking original = r;
  r.SwapPositions(4, 17);
  EXPECT_NE(r, original);
  r.SwapPositions(4, 17);
  EXPECT_EQ(r, original);
}

TEST(RankingTest, Reversed) {
  Ranking r({2, 0, 1});
  Ranking rev = r.Reversed();
  EXPECT_EQ(rev.At(0), 1);
  EXPECT_EQ(rev.At(1), 0);
  EXPECT_EQ(rev.At(2), 2);
  EXPECT_EQ(rev.Reversed(), r);
}

TEST(RankingTest, EqualityAndToString) {
  Ranking a({1, 0}), b({1, 0}), c({0, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.ToString(), "[1 0]");
  EXPECT_EQ(Ranking().ToString(), "[]");
}

TEST(RankingTest, EmptyRanking) {
  Ranking r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0);
}

class RankingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RankingPropertyTest, PositionsStayConsistentUnderRandomSwaps) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  Ranking r = testing::RandomRanking(n, &rng);
  for (int step = 0; step < 200; ++step) {
    int p = static_cast<int>(rng.NextUint64(n));
    int q = static_cast<int>(rng.NextUint64(n));
    r.SwapPositions(p, q);
    // Invariant: At and PositionOf are mutual inverses.
    for (int t = 0; t < n; ++t) {
      ASSERT_EQ(r.PositionOf(r.At(t)), t);
    }
    ASSERT_TRUE(Ranking::IsValidOrder(r.order()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RankingPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 16, 33));

}  // namespace
}  // namespace manirank
