#include "core/selection_metrics.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/fairness_metrics.h"
#include "core/make_mr_fair.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

CandidateTable HalfTable(int n) {
  std::vector<Attribute> attrs = {{"G", {"g0", "g1"}}};
  std::vector<std::vector<AttributeValue>> values(n, std::vector<AttributeValue>(1));
  for (int c = 0; c < n; ++c) values[c][0] = c < n / 2 ? 0 : 1;
  return CandidateTable(std::move(attrs), std::move(values));
}

TEST(TopKShareTest, SegregatedRanking) {
  CandidateTable t = HalfTable(10);
  Ranking r = Ranking::Identity(10);  // group 0 occupies the top half
  std::vector<double> share = TopKShare(r, t.attribute_grouping(0), 5);
  EXPECT_DOUBLE_EQ(share[0], 1.0);
  EXPECT_DOUBLE_EQ(share[1], 0.0);
}

TEST(TopKShareTest, SharesSumToOne) {
  Rng rng(1);
  CandidateTable t = testing::CyclicTable(24, 3, 2);
  Ranking r = testing::RandomRanking(24, &rng);
  for (int k : {1, 5, 12, 24}) {
    for (const Grouping* g : t.constrained_groupings()) {
      std::vector<double> share = TopKShare(r, *g, k);
      EXPECT_NEAR(std::accumulate(share.begin(), share.end(), 0.0), 1.0, 1e-12);
    }
  }
}

TEST(SelectionRatesTest, InterleavedIsEven) {
  CandidateTable t = HalfTable(8);
  Ranking r({0, 4, 1, 5, 2, 6, 3, 7});
  std::vector<double> rates = SelectionRates(r, t.attribute_grouping(0), 4);
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
}

TEST(SelectionRatesTest, FullKSelectsEveryone) {
  Rng rng(2);
  CandidateTable t = testing::CyclicTable(12, 2, 3);
  Ranking r = testing::RandomRanking(12, &rng);
  for (const Grouping* g : t.constrained_groupings()) {
    for (double rate : SelectionRates(r, *g, 12)) {
      EXPECT_DOUBLE_EQ(rate, 1.0);
    }
  }
}

TEST(AdverseImpactTest, SegregatedFailsInterleavedPasses) {
  CandidateTable t = HalfTable(8);
  const Grouping& g = t.attribute_grouping(0);
  EXPECT_DOUBLE_EQ(AdverseImpactRatio(Ranking::Identity(8), g, 4), 0.0);
  EXPECT_FALSE(PassesFourFifthsRule(Ranking::Identity(8), g, 4));
  Ranking interleaved({0, 4, 1, 5, 2, 6, 3, 7});
  EXPECT_DOUBLE_EQ(AdverseImpactRatio(interleaved, g, 4), 1.0);
  EXPECT_TRUE(PassesFourFifthsRule(interleaved, g, 4));
}

TEST(AdverseImpactTest, ClassicEeocExample) {
  // 60% vs 45% selection rates -> ratio 0.75 < 0.8: fails.
  // Build: group0 = 5 members (3 selected), group1 = 5 members (2 selected)
  // with k = 5: rates 0.6 / 0.4 -> 0.667 fails; adjust to a passing case
  // with 3/5 vs 2/4... use exact construction below.
  std::vector<Attribute> attrs = {{"G", {"a", "b"}}};
  std::vector<std::vector<AttributeValue>> values(10, std::vector<AttributeValue>(1));
  for (int c = 5; c < 10; ++c) values[c][0] = 1;
  CandidateTable t(std::move(attrs), std::move(values));
  // Top 5: three of group a, two of group b -> rates .6 vs .4 -> .667.
  Ranking r({0, 1, 2, 5, 6, 3, 4, 7, 8, 9});
  EXPECT_NEAR(AdverseImpactRatio(r, t.attribute_grouping(0), 5), 2.0 / 3.0,
              1e-12);
  EXPECT_FALSE(PassesFourFifthsRule(r, t.attribute_grouping(0), 5));
  // Top 5 with 3-vs-2 flipped at the margin: rates .4/.6 identical ratio.
  Ranking r2({5, 6, 7, 0, 1, 2, 3, 4, 8, 9});
  EXPECT_NEAR(AdverseImpactRatio(r2, t.attribute_grouping(0), 5), 2.0 / 3.0,
              1e-12);
}

TEST(GroupExposureTest, EqualGroupsInterleavedNearOne) {
  CandidateTable t = HalfTable(16);
  std::vector<CandidateId> order;
  for (int i = 0; i < 8; ++i) {
    order.push_back(i);
    order.push_back(8 + i);
  }
  Ranking r(std::move(order));
  std::vector<double> exposure = GroupExposure(r, t.attribute_grouping(0));
  // The log2 discount is steep at the very top, so even a perfect
  // interleave leaves the group holding position 0 ~8% ahead at n = 16.
  EXPECT_NEAR(exposure[0], 1.0, 0.1);
  EXPECT_NEAR(exposure[1], 1.0, 0.1);
  EXPECT_LT(ExposureParity(r, t.attribute_grouping(0)), 0.2);
}

TEST(GroupExposureTest, TopGroupGetsMoreThanAverage) {
  CandidateTable t = HalfTable(16);
  Ranking r = Ranking::Identity(16);
  std::vector<double> exposure = GroupExposure(r, t.attribute_grouping(0));
  EXPECT_GT(exposure[0], 1.0);
  EXPECT_LT(exposure[1], 1.0);
  EXPECT_GT(ExposureParity(r, t.attribute_grouping(0)), 0.2);
}

TEST(GroupExposureTest, PopulationWeightedMeanIsOne) {
  Rng rng(3);
  CandidateTable t = testing::CyclicTable(30, 5, 3);
  Ranking r = testing::RandomRanking(30, &rng);
  for (const Grouping* g : t.constrained_groupings()) {
    std::vector<double> exposure = GroupExposure(r, *g);
    double weighted = 0.0;
    for (int i = 0; i < g->num_groups(); ++i) {
      weighted += exposure[i] * g->group_size(i);
    }
    EXPECT_NEAR(weighted / 30.0, 1.0, 1e-12);
  }
}

TEST(GroupExposureTest, ManiRankRepairAlsoImprovesExposureAndTopK) {
  // The paper's pairwise repair is not defined on exposure, but pulling
  // FPR to parity should also move the alternative lenses toward parity.
  CandidateTable t = HalfTable(40);
  Ranking segregated = Ranking::Identity(40);
  const Grouping& g = t.attribute_grouping(0);
  const double exposure_before = ExposureParity(segregated, g);
  const double air_before = AdverseImpactRatio(segregated, g, 10);
  MakeMrFairOptions options;
  options.delta = 0.05;
  MakeMrFairResult repaired = MakeMrFair(segregated, t, options);
  ASSERT_TRUE(repaired.satisfied);
  EXPECT_LT(ExposureParity(repaired.ranking, g), exposure_before);
  EXPECT_GT(AdverseImpactRatio(repaired.ranking, g, 10), air_before);
  // Note: pairwise parity does NOT guarantee the four-fifths rule at any
  // particular k. The repaired ranking can satisfy FPR parity with a
  // "sandwich" structure (one group's block on top balanced by the other
  // group owning the middle), leaving the top-k one-sided — the lenses
  // are related but not equivalent, echoing the paper's point that every
  // fairness target must be constrained explicitly. We assert only strict
  // improvement over the fully segregated start (AIR 0).
  EXPECT_GT(AdverseImpactRatio(repaired.ranking, g, 10), 0.0);
}

}  // namespace
}  // namespace manirank
