// The exclusivity contract, exercised through the real synchronization
// layer: ContextGate semantics, gated ConsensusContext behaviour, and the
// ContextManager gate under multiple threads. Before the serving layer,
// mutating a context mid-RunAll was only caught by a single-thread debug
// check; these tests pin down the promoted behaviour — cross-thread
// mutations block until runs drain, TryFlush is rejected while a run is
// in flight, and same-thread re-entrant mutation still throws.

#include "core/gate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/method_registry.h"
#include "serve/context_manager.h"
#include "serve/protocol.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

using serve::ContextManager;

using serve::TableStats;

/// Two-phase latch: the probe method signals it has started and then
/// parks until the test releases it — a deterministic stand-in for a
/// long-running query wave.
class Latch {
 public:
  void SignalStarted() {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    cv_.notify_all();
  }
  void AwaitStarted() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return started_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }
  void AwaitRelease() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool released_ = false;
};

MethodSpec BlockingProbe(Latch* latch, int n) {
  MethodSpec probe;
  probe.id = "probe";
  probe.name = "blocking-probe";
  probe.run = [latch, n](const ConsensusContext&,
                         const ConsensusOptions&) -> ConsensusOutput {
    latch->SignalStarted();
    latch->AwaitRelease();
    ConsensusOutput out;
    out.consensus = Ranking::Identity(n);
    return out;
  };
  return probe;
}

TEST(ContextGateTest, SharedHoldersAdmitEachOther) {
  ContextGate gate;
  gate.LockShared();
  gate.LockShared();
  EXPECT_EQ(gate.readers_in_flight(), 2);
  EXPECT_FALSE(gate.TryLockExclusive());
  gate.UnlockShared();
  gate.UnlockShared();
  EXPECT_TRUE(gate.TryLockExclusive());
  EXPECT_TRUE(gate.ThisThreadHoldsExclusive());
  // Re-entrant exclusive: the batch-application path re-acquires.
  EXPECT_TRUE(gate.TryLockExclusive());
  gate.UnlockExclusive();
  EXPECT_TRUE(gate.ThisThreadHoldsExclusive());
  gate.UnlockExclusive();
  EXPECT_FALSE(gate.ThisThreadHoldsExclusive());
}

TEST(ContextGateTest, ExclusiveWaitsForReadersAndBlocksNewOnes) {
  ContextGate gate;
  gate.LockShared();
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    gate.LockExclusive();
    writer_in.store(true);
    gate.UnlockExclusive();
  });
  // The writer cannot enter while the reader holds the gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_in.load());
  gate.UnlockShared();
  writer.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(GatedContextTest, SameThreadMutationInsideRunStillThrows) {
  // A gated context must keep the deterministic logic_error for the
  // always-a-bug case — blocking would self-deadlock.
  Rng rng(501);
  CandidateTable table = testing::CyclicTable(8, 2, 2);
  std::vector<Ranking> base;
  for (int i = 0; i < 6; ++i) base.push_back(testing::RandomRanking(8, &rng));
  ConsensusContext ctx(base, table);
  ContextGate gate;
  ctx.AttachGate(&gate);
  Ranking extra = testing::RandomRanking(8, &rng);
  MethodSpec probe;
  probe.id = "probe";
  probe.name = "mutating-probe";
  probe.run = [&](const ConsensusContext&,
                  const ConsensusOptions&) -> ConsensusOutput {
    EXPECT_THROW(ctx.AddRanking(extra), std::logic_error);
    EXPECT_THROW(ctx.AddRankings({extra}), std::logic_error);
    EXPECT_THROW(ctx.RemoveRanking(0), std::logic_error);
    ConsensusOutput out;
    out.consensus = Ranking::Identity(8);
    return out;
  };
  ctx.RunMethod(probe);
  EXPECT_EQ(ctx.generation(), 0u);
  // Once the run drains the gate admits the mutation normally.
  EXPECT_NO_THROW(ctx.AddRanking(extra));
  EXPECT_EQ(ctx.generation(), 1u);
}

TEST(GatedContextTest, CrossThreadMutationBlocksUntilRunCompletes) {
  // The promotion itself: with a gate attached, a mutation racing a run
  // from another thread waits for the run instead of throwing.
  Rng rng(503);
  CandidateTable table = testing::CyclicTable(8, 2, 2);
  std::vector<Ranking> base;
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(8, &rng));
  ConsensusContext ctx(base, table);
  ContextGate gate;
  ctx.AttachGate(&gate);
  Latch latch;
  const MethodSpec probe = BlockingProbe(&latch, 8);
  std::thread runner([&] { ctx.RunMethod(probe); });
  latch.AwaitStarted();

  std::atomic<bool> mutated{false};
  Ranking extra = testing::RandomRanking(8, &rng);
  std::thread mutator([&] {
    ctx.AddRanking(extra);  // must block, not throw
    mutated.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(mutated.load()) << "mutation interleaved an in-flight run";
  EXPECT_EQ(ctx.generation(), 0u);
  latch.Release();
  runner.join();
  mutator.join();
  EXPECT_TRUE(mutated.load());
  EXPECT_EQ(ctx.generation(), 1u);
  EXPECT_EQ(ctx.num_rankings(), 6u);
}

TEST(ServeGateTest, MutationMidRunIsRejectedThroughTheManagerGate) {
  // The regression demanded by the serving layer: while a query wave is
  // in flight on a table, (1) enqueues are admitted but not applied,
  // (2) TryFlush is rejected, (3) a blocking Flush waits for the wave,
  // and (4) the wave's outputs correspond to the pre-mutation profile.
  ContextManager manager;
  std::vector<Ranking> base;
  Rng rng(505);
  for (int i = 0; i < 5; ++i) base.push_back(testing::RandomRanking(8, &rng));
  manager.Create("t", MakeCyclicTable(8, 2, 2), base);

  Latch latch;
  const MethodSpec probe = BlockingProbe(&latch, 8);
  std::thread wave([&] { manager.Run("t", probe); });
  latch.AwaitStarted();

  // Enqueue while the wave runs: admitted, coalesced, NOT applied.
  manager.Append("t", {testing::RandomRanking(8, &rng),
                       testing::RandomRanking(8, &rng)});
  manager.Remove("t", 0);
  TableStats stats = manager.Stats("t");
  EXPECT_EQ(stats.pending_ops, 2u);
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.num_rankings, 5u);

  // Immediate application is rejected while the run holds the gate.
  size_t applied = 1234;
  EXPECT_FALSE(manager.TryFlush("t", &applied));
  EXPECT_EQ(applied, 0u);
  stats = manager.Stats("t");
  EXPECT_EQ(stats.pending_ops, 2u);
  EXPECT_EQ(stats.generation, 0u);

  // A blocking Flush parks behind the wave.
  std::atomic<bool> flushed{false};
  std::thread flusher([&] {
    EXPECT_EQ(manager.Flush("t"), 3u);  // 2 adds + 1 remove
    flushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(flushed.load()) << "Flush applied mid-run";
  EXPECT_EQ(manager.Stats("t").generation, 0u);

  latch.Release();
  wave.join();
  flusher.join();
  EXPECT_TRUE(flushed.load());
  stats = manager.Stats("t");
  EXPECT_EQ(stats.generation, 3u);
  EXPECT_EQ(stats.num_rankings, 6u);  // 5 + 2 - 1
  EXPECT_EQ(stats.pending_ops, 0u);
}

TEST(ServeGateTest, ReenteringTheServingApiFromAMethodRunFailsFast) {
  // A method body that calls back into the serving API for its own table
  // must get a logic_error, not a self-deadlock on the gate it already
  // holds shared. Enqueue-only requests (Append/Remove/Stats) stay legal.
  ContextManager manager;
  Rng rng(507);
  manager.Create("t", MakeCyclicTable(8, 2, 2),
                 {Ranking::Identity(8), Ranking::Identity(8).Reversed()});
  Ranking extra = testing::RandomRanking(8, &rng);
  MethodSpec probe;
  probe.id = "probe";
  probe.name = "reentrant-probe";
  probe.run = [&](const ConsensusContext&,
                  const ConsensusOptions&) -> ConsensusOutput {
    EXPECT_NO_THROW(manager.Append("t", {extra}));  // enqueue only: fine
    EXPECT_NO_THROW(manager.Stats("t"));            // no drain: fine
    EXPECT_THROW(manager.Flush("t"), std::logic_error);
    EXPECT_THROW(manager.TryFlush("t"), std::logic_error);
    EXPECT_THROW(manager.Run("t", "A4"), std::logic_error);
    ConsensusOutput out;
    out.consensus = Ranking::Identity(8);
    return out;
  };
  manager.Run("t", probe);
  // The wave over, the enqueued ranking applies normally.
  EXPECT_EQ(manager.Flush("t"), 1u);
  EXPECT_EQ(manager.Stats("t").num_rankings, 3u);
}

TEST(ServeGateTest, ConcurrentWavesAndMutationsStayConsistent) {
  // Stress: per-table client threads hammer Append/Run/Remove through the
  // manager while the gates serialize application against query waves.
  // Every table must end with exactly the rankings its client kept in its
  // shadow, and the final consensus must equal a fresh context's.
  ContextManager manager;
  constexpr int kTables = 3;
  constexpr int kSteps = 40;
  const int n = 8;
  for (int t = 0; t < kTables; ++t) {
    manager.Create("t" + std::to_string(t), MakeCyclicTable(n, 2, 2),
                   {Ranking::Identity(n)});
  }
  std::vector<std::vector<Ranking>> shadows(kTables, {Ranking::Identity(n)});
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kTables; ++t) {
    clients.emplace_back([&, t] {
      const std::string name = "t" + std::to_string(t);
      Rng rng(600 + static_cast<uint64_t>(t));
      for (int step = 0; step < kSteps; ++step) {
        const uint64_t action = rng.NextUint64(4);
        if (action == 0 && shadows[t].size() > 2) {
          const size_t index = rng.NextUint64(shadows[t].size());
          manager.Remove(name, index);
          shadows[t].erase(shadows[t].begin() +
                           static_cast<ptrdiff_t>(index));
        } else if (action < 3) {
          Ranking extra = testing::RandomRanking(n, &rng);
          shadows[t].push_back(extra);
          manager.Append(name, {std::move(extra)});
        } else {
          const ConsensusOutput out = manager.Run(name, "A4");
          if (out.consensus.size() != n) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kTables; ++t) {
    const std::string name = "t" + std::to_string(t);
    manager.Flush(name);
    const TableStats stats = manager.Stats(name);
    EXPECT_EQ(stats.num_rankings, shadows[t].size()) << name;
    CandidateTable fresh_table = MakeCyclicTable(n, 2, 2);
    ConsensusContext fresh(shadows[t], fresh_table);
    EXPECT_EQ(manager.Run(name, "A4").consensus.order(),
              fresh.RunMethod("A4").consensus.order())
        << name;
  }
}

}  // namespace
}  // namespace manirank
