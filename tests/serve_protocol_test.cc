// Protocol robustness tests: every malformed request must draw an
// "ERR <code>:" response and leave the addressed table's applied state
// unchanged — verified through the STATS generation counter, which only
// moves when mutations are actually folded into a context. Includes a
// deterministic fuzz-ish sweep of mutated request lines.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/ranking.h"
#include "data/op_log.h"
#include "serve/context_manager.h"
#include "util/rng.h"

namespace manirank {
namespace {

using serve::ContextManager;
using serve::Dispatcher;


/// Fixture with one live table and helpers to assert state invariance.
class ProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dispatcher_ = std::make_unique<Dispatcher>(&manager_);
    ASSERT_EQ(Handle("CREATE t CYCLIC 6 2 3"), "OK CREATE t candidates=6 rankings=0");
    ASSERT_TRUE(IsOk(Handle("APPEND t 0 1 2 3 4 5 ; 5 4 3 2 1 0")));
    ASSERT_TRUE(IsOk(Handle("FLUSH t")));
  }

  std::string Handle(const std::string& line) {
    return dispatcher_->Handle(line);
  }
  static bool IsOk(const std::string& r) { return r.rfind("OK", 0) == 0; }
  static bool IsErr(const std::string& r) { return r.rfind("ERR ", 0) == 0; }

  /// "generation=<g> ... pending_ops=<o>" snapshot of table t. If the
  /// table has been dropped (fuzzing can legitimately issue DROP t), the
  /// stable "ERR no-such-table" response doubles as the snapshot.
  std::string StateSnapshot() { return Handle("STATS t"); }

  ContextManager manager_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

TEST_F(ProtocolTest, BlankAndCommentLinesDrawNoResponse) {
  EXPECT_EQ(Handle(""), "");
  EXPECT_EQ(Handle("   \t  "), "");
  EXPECT_EQ(Handle("# a comment"), "");
  EXPECT_EQ(Handle("#APPEND t 0 1 2 3 4 5"), "");
}

TEST_F(ProtocolTest, MalformedRequestsErrAndLeaveStateUnchanged) {
  const std::string before = StateSnapshot();
  const std::vector<std::pair<std::string, std::string>> cases = {
      // unknown verb
      {"FROB t", "ERR unknown-verb"},
      {"append t 0 1 2 3 4 5", "ERR unknown-verb"},  // verbs are upper-case
      {"OK", "ERR unknown-verb"},
      // missing / unknown table
      {"RUN ghost A4", "ERR no-such-table"},
      {"STATS ghost", "ERR no-such-table"},
      {"APPEND ghost 0 1 2 3 4 5", "ERR no-such-table"},
      {"REMOVE ghost 0", "ERR no-such-table"},
      {"FLUSH ghost", "ERR no-such-table"},
      {"DROP ghost", "ERR no-such-table"},
      // arity errors
      {"RUN", "ERR bad-request"},
      {"RUN t", "ERR bad-request"},
      {"APPEND t", "ERR bad-request"},
      {"REMOVE t", "ERR bad-request"},
      {"REMOVE t 0 0", "ERR bad-request"},
      {"STATS", "ERR bad-request"},
      {"TABLES t", "ERR bad-request"},
      {"CREATE t2", "ERR bad-request"},
      {"CREATE t2 SYNTH 6", "ERR bad-request"},
      {"CREATE t2 CYCLIC 6 2", "ERR bad-request"},
      {"CREATE t2 CYCLIC x 2 2", "ERR bad-request"},
      {"CREATE t2 CYCLIC -6 2 2", "ERR bad-request"},
      // duplicate table: a distinct code, so clients can retry CREATE
      // idempotently without parsing the detail text
      {"CREATE t CYCLIC 6 2 2", "ERR table-exists"},
      // bad ranking payloads
      {"APPEND t 0 1 2", "ERR bad-ranking"},               // wrong size
      {"APPEND t 0 1 2 3 4 9", "ERR bad-ranking"},         // out of domain
      {"APPEND t 0 1 2 3 4 4", "ERR bad-ranking"},         // duplicate
      {"APPEND t 0 1 2 3 4 x", "ERR bad-ranking"},         // non-numeric
      {"APPEND t 0 1 2 3 4 -5", "ERR bad-ranking"},        // negative
      // beyond int32: must NOT truncate into a valid candidate id
      {"APPEND t 4294967296 1 2 3 4 5", "ERR bad-ranking"},
      // would truncate n through the int cast (and OOM if honoured)
      {"CREATE big CYCLIC 4294967297 2 2", "ERR bad-request"},
      {"APPEND t 0 1 2 3 4 5 ;", "ERR bad-ranking"},       // empty 2nd ranking
      {"APPEND t ; 0 1 2 3 4 5", "ERR bad-ranking"},       // empty 1st ranking
      {"APPEND t 0 1 2 3 4 5 ; 0 1 2", "ERR bad-ranking"},  // ragged batch
      // bad indices
      {"REMOVE t 2", "ERR bad-index"},    // profile holds 2 → valid: 0, 1
      {"REMOVE t 99", "ERR bad-index"},
      {"REMOVE t -1", "ERR bad-index"},
      {"REMOVE t 1.5", "ERR bad-index"},
      // bad RUN arguments
      {"RUN t Z9", "ERR unknown-method"},
      {"RUN t A4 DELTA", "ERR bad-request"},
      {"RUN t A4 DELTA x", "ERR bad-request"},
      {"RUN t A4 LIMIT -3", "ERR bad-request"},
      {"RUN t A4 WIBBLE 3", "ERR bad-request"},
      // I/O errors
      {"CREATE t3 FILE /no/such/file.csv", "ERR io"},
      // snapshot verbs: arity, unknown tables, unreadable files
      {"SNAPSHOT t", "ERR bad-request"},
      {"SNAPSHOT t a b", "ERR bad-request"},
      {"SNAPSHOT ghost /tmp/x.snap", "ERR no-such-table"},
      {"RESTORE t4", "ERR bad-request"},
      {"RESTORE t4 /no/such/file.snap", "ERR io"},
  };
  for (const auto& [request, expected_prefix] : cases) {
    const std::string response = Handle(request);
    EXPECT_EQ(response.rfind(expected_prefix, 0), 0u)
        << "request '" << request << "' drew '" << response << "'";
    EXPECT_EQ(StateSnapshot(), before)
        << "request '" << request << "' changed table state";
  }
  // And the table still serves correctly after the abuse.
  EXPECT_TRUE(IsOk(Handle("RUN t A4")));
}

TEST_F(ProtocolTest, DuplicateCreateDrawsTableExistsCode) {
  // The idempotent-retry contract: a client that lost a CREATE response
  // can re-send it and treat ERR table-exists as success — distinct from
  // bad-request, and guaranteed not to disturb the live table.
  const std::string before = StateSnapshot();
  const std::string response = Handle("CREATE t CYCLIC 6 2 3");
  EXPECT_EQ(response.rfind("ERR table-exists", 0), 0u) << response;
  EXPECT_EQ(StateSnapshot(), before);
  // Same code regardless of the CREATE source (shape differences must not
  // leak a different error class for the same condition).
  EXPECT_EQ(Handle("CREATE t CYCLIC 9 3 3").rfind("ERR table-exists", 0), 0u);
  // And the table still serves.
  EXPECT_TRUE(IsOk(Handle("RUN t A4")));
}

TEST_F(ProtocolTest, SnapshotToUnwritablePathRejectsBeforeDraining) {
  // The write target is probed before the queue drains: an unwritable
  // path must draw ERR io with the queued mutation still pending and the
  // generation counter unmoved.
  ASSERT_TRUE(IsOk(Handle("APPEND t 2 1 0 5 4 3")));
  const std::string before = StateSnapshot();
  ASSERT_NE(before.find("pending_ops=1"), std::string::npos) << before;
  const std::string response =
      Handle("SNAPSHOT t /no/such/dir/t.snap");
  EXPECT_EQ(response.rfind("ERR io", 0), 0u) << response;
  EXPECT_EQ(StateSnapshot(), before)
      << "a rejected SNAPSHOT must not have drained the queue";
}

TEST_F(ProtocolTest, RunOnEmptyTableDrawsEmptyTableError) {
  ASSERT_TRUE(IsOk(Handle("CREATE empty CYCLIC 6 2 2")));
  EXPECT_EQ(Handle("RUN empty A4").rfind("ERR empty-table", 0), 0u);
  EXPECT_EQ(Handle("RUN empty all").rfind("ERR empty-table", 0), 0u);
  // Still servable once a profile arrives.
  ASSERT_TRUE(IsOk(Handle("APPEND empty 0 1 2 3 4 5")));
  EXPECT_TRUE(IsOk(Handle("RUN empty A4")));
}

TEST_F(ProtocolTest, ErrorsNeverEnqueueHalfABatch) {
  // A batch whose SECOND ranking is bad must not enqueue its first.
  const std::string before = StateSnapshot();
  EXPECT_TRUE(IsErr(Handle("APPEND t 0 1 2 3 4 5 ; 0 0 0 0 0 0")));
  EXPECT_EQ(StateSnapshot(), before);
  // The generation counter proves nothing was applied on a later wave.
  EXPECT_TRUE(IsOk(Handle("RUN t A3")));
  const std::string stats = Handle("STATS t");
  EXPECT_NE(stats.find("rankings=2 generation=2"), std::string::npos)
      << stats;
}

/// Masks the runs= counter and the result-cache counters: EVAL bumps
/// them (it IS a consensus run, and its consensus leg goes through the
/// result cache), but everything else in STATS must hold still.
std::string MaskRuns(std::string stats) {
  for (const std::string field :
       {" runs=", " cache_hits=", " cache_misses=", " cache_entries="}) {
    const size_t at = stats.find(field);
    if (at == std::string::npos) continue;
    size_t end = at + field.size();
    while (end < stats.size() && stats[end] != ' ') ++end;
    stats.replace(at, end - at, field + "_");
  }
  return stats;
}

TEST_F(ProtocolTest, EvalScoresARankingWithoutMutating) {
  const std::string before = StateSnapshot();
  const std::string response = Handle("EVAL t 0 1 2 3 4 5");
  EXPECT_EQ(response.rfind("OK EVAL t gen=2 method=A3", 0), 0u) << response;
  EXPECT_NE(response.find(" tau="), std::string::npos) << response;
  EXPECT_NE(response.find(" ntau="), std::string::npos) << response;
  EXPECT_NE(response.find(" parity="), std::string::npos) << response;
  EXPECT_NE(response.find(" max_parity="), std::string::npos) << response;
  // Read-only up to the runs counter: the generation must not have
  // moved, and EVAL must not drain queued mutations (it observes the
  // applied profile).
  EXPECT_EQ(MaskRuns(StateSnapshot()), MaskRuns(before));
  ASSERT_TRUE(IsOk(Handle("APPEND t 2 1 0 5 4 3")));
  EXPECT_EQ(Handle("EVAL t 0 1 2 3 4 5").rfind("OK EVAL t gen=2", 0), 0u);
  EXPECT_NE(StateSnapshot().find("pending_ops=1"), std::string::npos);
  // Deterministic: same table state, same ranking, same bytes.
  EXPECT_EQ(Handle("EVAL t 5 4 3 2 1 0"), Handle("EVAL t 5 4 3 2 1 0"));
}

TEST_F(ProtocolTest, EvalRejectsBadInputsAndLeavesStateUnchanged) {
  const std::string before = StateSnapshot();
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"EVAL", "ERR bad-request"},
      {"EVAL t", "ERR bad-request"},
      {"EVAL ghost 0 1 2 3 4 5", "ERR no-such-table"},
      {"EVAL t 0 1 2", "ERR bad-ranking"},            // wrong size
      {"EVAL t 0 1 2 3 4 9", "ERR bad-ranking"},      // out of domain
      {"EVAL t 0 1 2 3 4 4", "ERR bad-ranking"},      // duplicate
      {"EVAL t 0 1 2 3 4 x", "ERR bad-ranking"},      // non-numeric
      {"EVAL t 0 1 2 3 4 -5", "ERR bad-ranking"},     // negative
  };
  for (const auto& [request, expected_prefix] : cases) {
    const std::string response = Handle(request);
    EXPECT_EQ(response.rfind(expected_prefix, 0), 0u)
        << "request '" << request << "' drew '" << response << "'";
    EXPECT_EQ(StateSnapshot(), before)
        << "request '" << request << "' changed table state";
  }
  // An empty table has no consensus to score against.
  ASSERT_TRUE(IsOk(Handle("CREATE hollow CYCLIC 6 2 2")));
  EXPECT_EQ(Handle("EVAL hollow 0 1 2 3 4 5").rfind("ERR empty-table", 0),
            0u);
}

TEST_F(ProtocolTest, ReplicateIsUnavailableWithoutAStreamingFrontEnd) {
  // The plain dispatcher (stdin / script / --serve replay) has no
  // durability layer and no binary stream to switch into: every arity
  // draws a single ERR line and no state moves.
  const std::string before = StateSnapshot();
  EXPECT_EQ(Handle("REPLICATE t").rfind("ERR unavailable", 0), 0u);
  EXPECT_EQ(Handle("REPLICATE ghost").rfind("ERR no-such-table", 0), 0u);
  EXPECT_EQ(Handle("REPLICATE").rfind("ERR bad-request", 0), 0u);
  EXPECT_EQ(Handle("REPLICATE t extra").rfind("ERR bad-request", 0), 0u);
  EXPECT_EQ(StateSnapshot(), before);
  // Classified for the schedulers: a barrier AND flagged for streaming
  // interception; malformed variants lose the stream flag's table.
  const serve::RequestClass cls = serve::ClassifyRequest("REPLICATE t");
  EXPECT_TRUE(cls.replicate);
  EXPECT_TRUE(cls.barrier);
}

TEST_F(ProtocolTest, FollowerTablesRejectMutationsWithReadonly) {
  manager_.SetTableRole("t", serve::TableRole::kFollower);
  const std::string before = StateSnapshot();
  ASSERT_NE(before.find("role=follower"), std::string::npos) << before;
  for (const char* request :
       {"APPEND t 0 1 2 3 4 5", "REMOVE t 0",
        "SNAPSHOT-POLICY t GENERATIONS 4"}) {
    const std::string response = Handle(request);
    EXPECT_TRUE(IsErr(response)) << request << " drew " << response;
    EXPECT_EQ(StateSnapshot(), before)
        << "request '" << request << "' changed follower state";
  }
  EXPECT_EQ(Handle("APPEND t 0 1 2 3 4 5").rfind("ERR readonly", 0), 0u);
  // With APPEND/REMOVE rejected the follower's queue is always empty, so
  // FLUSH degenerates to a harmless no-op drain.
  EXPECT_EQ(Handle("FLUSH t"), "OK FLUSH t applied=0");
  // Reads keep serving: RUN (draining is a no-op on an empty queue),
  // STATS, EVAL.
  EXPECT_TRUE(IsOk(Handle("RUN t A4")));
  EXPECT_TRUE(IsOk(Handle("EVAL t 0 1 2 3 4 5")));
  // The replication path itself may still apply records.
  OpRecord record;
  record.kind = OpRecord::Kind::kAppend;
  record.rankings.push_back(Ranking({2, 0, 4, 1, 5, 3}));
  EXPECT_EQ(manager_.ApplyReplicated("t", std::move(record)), 1u);
  EXPECT_NE(Handle("STATS t").find("rankings=3 generation=3"),
            std::string::npos);
  // Back to leader: mutations flow again.
  manager_.SetTableRole("t", serve::TableRole::kLeader);
  EXPECT_TRUE(IsOk(Handle("APPEND t 0 1 2 3 4 5")));
  EXPECT_TRUE(IsOk(Handle("FLUSH t")));
}

TEST_F(ProtocolTest, FuzzedRequestLinesNeverCrashOrCorrupt) {
  // Deterministic fuzz-ish sweep: random token soup plus mutations of
  // valid requests. Every line must draw exactly one OK/ERR response (or
  // none for comments), never throw, and ERR responses must leave the
  // applied state untouched.
  Rng rng(20260730);
  const std::vector<std::string> vocabulary = {
      "CREATE", "APPEND",  "REMOVE", "RUN",   "STATS", "FLUSH",
      "DROP",   "TABLES",  "t",      "ghost", "A4",    "all",
      "0",      "1",       "5",      "-1",    ";",     "DELTA",
      "LIMIT",  "CYCLIC",  "FILE",   "0.2",   "x",     "99999999999999999999",
      "#",      "\t",      "",       "🙂",    "NaN",   "1e9",
      "EVAL",   "REPLICATE"};
  int errs = 0;
  int oks = 0;
  for (int round = 0; round < 400; ++round) {
    std::ostringstream line;
    const int tokens = 1 + static_cast<int>(rng.NextUint64(8));
    for (int i = 0; i < tokens; ++i) {
      if (i > 0) line << ' ';
      line << vocabulary[rng.NextUint64(vocabulary.size())];
    }
    const std::string before = StateSnapshot();
    std::string response;
    ASSERT_NO_THROW(response = Handle(line.str())) << line.str();
    if (response.empty()) continue;  // comment/blank
    ASSERT_TRUE(IsOk(response) || IsErr(response))
        << "request '" << line.str() << "' drew '" << response << "'";
    if (IsErr(response)) {
      ++errs;
      EXPECT_EQ(StateSnapshot(), before)
          << "request '" << line.str() << "' errored but changed state";
    } else {
      ++oks;
    }
  }
  // The vocabulary is rigged so both outcomes occur.
  EXPECT_GT(errs, 50);
  EXPECT_GT(oks, 0);
  // The dispatcher is still fully servable after the storm: a fresh
  // table created post-fuzz serves a clean wave.
  EXPECT_TRUE(IsOk(Handle("CREATE postfuzz CYCLIC 6 2 2")));
  EXPECT_TRUE(IsOk(Handle("APPEND postfuzz 0 1 2 3 4 5")));
  EXPECT_TRUE(IsOk(Handle("RUN postfuzz A4")));
}

}  // namespace
}  // namespace manirank
