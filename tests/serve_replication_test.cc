// Leader/follower replication end-to-end: a ServeExecutor leader with
// the durability layer streams snapshot floors + op-log records to a
// FollowerClient feeding a second ContextManager. The contract under
// test is the equivalence invariant of serve/replica.h — after catching
// up to generation G the follower serves RUN / EVAL bit-identically to
// the leader at G, stays converged while the leader keeps folding
// (including across snapshot-truncation chain rotations, which close
// the stream and force a re-handshake), and keeps serving its last
// consistent fold boundary after the leader dies.

#include "serve/replica.h"

#include <gtest/gtest.h>

#ifdef MANIRANK_SERVE_HAVE_SOCKETS

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/context_manager.h"
#include "serve/durability.h"
#include "serve/executor.h"
#include "serve/protocol.h"
#include "serve_test_util.h"

namespace manirank {
namespace {

namespace fs = std::filesystem;
using serve::ContextManager;
using serve::Dispatcher;
using serve::DurabilityManager;
using serve::FollowerClient;
using serve::ServeExecutor;

uint64_t StatsGeneration(const std::string& stats) {
  const size_t at = stats.find(" generation=");
  if (at == std::string::npos) return ~0ull;
  return std::strtoull(stats.c_str() + at + 12, nullptr, 10);
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "manirank_repl_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    durability_.emplace(dir_, &leader_manager_);
    durability_->Attach();
    serve::ServerOptions options;
    options.port = 0;
    options.durability = &*durability_;
    leader_.emplace(&leader_manager_, options);
    std::string error;
    ASSERT_TRUE(leader_->Start(&error)) << error;
  }

  void TearDown() override {
    if (follower_.has_value()) follower_->Shutdown();
    if (leader_.has_value()) leader_->Shutdown();
    fs::remove_all(dir_);
  }

  void StartFollower() {
    FollowerClient::Options options;
    options.port = leader_->port();
    options.reconnect_ms = 100;
    options.discover_ms = 100;
    follower_.emplace(&follower_manager_, options);
    std::string error;
    ASSERT_TRUE(follower_->Start(&error)) << error;
  }

  /// STATS through a local dispatcher over the follower's manager — the
  /// same code path manirank_serve --follow serves remotely.
  std::string FollowerStats(const std::string& table) {
    Dispatcher dispatcher(&follower_manager_);
    return dispatcher.Handle("STATS " + table);
  }

  bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return pred();
  }

  /// Caught up = the follower has the table, at the given generation,
  /// with zero reported lag on a live stream.
  bool FollowerConverged(const std::string& table, uint64_t generation) {
    const std::string stats = FollowerStats(table);
    return stats.rfind("OK", 0) == 0 &&
           StatsGeneration(stats) == generation &&
           stats.find(" replica_lag_generations=0 ") != std::string::npos &&
           stats.find(" replica_connected=1") != std::string::npos;
  }

  std::string dir_;
  ContextManager leader_manager_;
  ContextManager follower_manager_;
  std::optional<DurabilityManager> durability_;
  std::optional<ServeExecutor> leader_;
  std::optional<FollowerClient> follower_;
};

TEST_F(ReplicationTest, FollowerCatchesUpAndServesBitIdentically) {
  testing::Client client(leader_->port());
  const std::vector<std::string> setup = {
      "CREATE t CYCLIC 6 2 3",
      "APPEND t 0 1 2 3 4 5 ; 5 4 3 2 1 0",
      "APPEND t 2 0 4 1 5 3",
      "FLUSH t",  // records commit at fold boundaries only
  };
  ASSERT_TRUE(client.Send(testing::JoinRequests(setup)));
  for (const std::string& response : client.ReadLines(setup.size())) {
    ASSERT_EQ(response.rfind("OK", 0), 0u) << response;
  }

  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return FollowerConverged("t", 3); }))
      << FollowerStats("t");

  // The core contract: RUN-all, EVAL and SELECT byte-identical at
  // generation 3. SELECT is follower-servable (read-only, non-draining)
  // and both sides go through their own result caches — repeats pin the
  // hit path to the same bytes as the cold path.
  ASSERT_TRUE(client.Send("RUN t all\nEVAL t 0 1 2 3 4 5\n"
                          "SELECT t 3 ATTR 0 0 1 3\n"
                          "SELECT t 3 ATTR 0 0 1 3\n"));
  const std::vector<std::string> leader_reads = client.ReadLines(4);
  Dispatcher follower_dispatcher(&follower_manager_);
  EXPECT_EQ(follower_dispatcher.Handle("RUN t all"), leader_reads[0]);
  EXPECT_EQ(follower_dispatcher.Handle("EVAL t 0 1 2 3 4 5"),
            leader_reads[1]);
  EXPECT_EQ(follower_dispatcher.Handle("SELECT t 3 ATTR 0 0 1 3"),
            leader_reads[2]);
  EXPECT_EQ(leader_reads[3], leader_reads[2]);  // leader hit == cold
  EXPECT_EQ(follower_dispatcher.Handle("SELECT t 3 ATTR 0 0 1 3"),
            leader_reads[2]);  // follower hit == leader cold

  // Followers are read-only replicas.
  EXPECT_EQ(follower_dispatcher.Handle("APPEND t 0 1 2 3 4 5")
                .rfind("ERR readonly", 0),
            0u);
  EXPECT_EQ(follower_dispatcher.Handle("REMOVE t 0").rfind("ERR readonly", 0),
            0u);
  const std::string stats = FollowerStats("t");
  EXPECT_NE(stats.find(" role=follower "), std::string::npos) << stats;
}

TEST_F(ReplicationTest, FollowerTailsFoldsAcrossChainRotations) {
  testing::Client client(leader_->port());
  const std::vector<std::string> setup = {
      "CREATE t CYCLIC 6 2 3",
      // GENERATIONS 1: EVERY fold truncates the log into a fresh chain,
      // so each one closes the replication stream — the follower must
      // re-handshake its way through all of them and still converge.
      "SNAPSHOT-POLICY t GENERATIONS 1",
      "APPEND t 0 1 2 3 4 5",
      "FLUSH t",
  };
  ASSERT_TRUE(client.Send(testing::JoinRequests(setup)));
  for (const std::string& response : client.ReadLines(setup.size())) {
    ASSERT_EQ(response.rfind("OK", 0), 0u) << response;
  }
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return FollowerConverged("t", 1); }))
      << FollowerStats("t");

  const std::vector<std::string> rotations = {
      "5 4 3 2 1 0", "2 0 4 1 5 3", "3 1 4 0 5 2", "1 2 3 4 5 0"};
  uint64_t generation = 1;
  for (const std::string& ranking : rotations) {
    ASSERT_TRUE(client.Send("APPEND t " + ranking + "\nFLUSH t\n"));
    for (const std::string& response : client.ReadLines(2)) {
      ASSERT_EQ(response.rfind("OK", 0), 0u) << response;
    }
    ++generation;
    ASSERT_TRUE(WaitUntil([&] { return FollowerConverged("t", generation); }))
        << "after fold " << generation << ": " << FollowerStats("t");
    ASSERT_TRUE(client.Send("RUN t all\n"));
    Dispatcher follower_dispatcher(&follower_manager_);
    EXPECT_EQ(follower_dispatcher.Handle("RUN t all"),
              client.ReadLines(1)[0])
        << "diverged at generation " << generation;
  }
}

TEST_F(ReplicationTest, FollowerKeepsServingAfterLeaderDies) {
  testing::Client client(leader_->port());
  const std::vector<std::string> setup = {
      "CREATE t CYCLIC 6 2 3",
      "APPEND t 0 1 2 3 4 5 ; 2 0 4 1 5 3",
      "FLUSH t",
  };
  ASSERT_TRUE(client.Send(testing::JoinRequests(setup)));
  for (const std::string& response : client.ReadLines(setup.size())) {
    ASSERT_EQ(response.rfind("OK", 0), 0u) << response;
  }
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return FollowerConverged("t", 2); }))
      << FollowerStats("t");
  Dispatcher follower_dispatcher(&follower_manager_);
  const std::string reference = follower_dispatcher.Handle("RUN t all");
  ASSERT_EQ(reference.rfind("OK", 0), 0u) << reference;

  // The leader goes away entirely (graceful here; the CI smoke covers
  // kill -9 of a whole process — from the follower's end both are the
  // same event: the stream dies).
  leader_->Shutdown();
  leader_.reset();

  // The follower notices the loss and reports it, but keeps serving its
  // last consistent fold boundary — bit-identically.
  ASSERT_TRUE(WaitUntil([&] {
    return FollowerStats("t").find(" replica_connected=0") !=
           std::string::npos;
  })) << FollowerStats("t");
  const std::string stats = FollowerStats("t");
  EXPECT_NE(stats.find(" role=follower "), std::string::npos) << stats;
  EXPECT_EQ(StatsGeneration(stats), 2u) << stats;
  EXPECT_EQ(follower_dispatcher.Handle("RUN t all"), reference);
  EXPECT_EQ(follower_dispatcher.Handle("APPEND t 0 1 2 3 4 5")
                .rfind("ERR readonly", 0),
            0u);
  // Shutdown of the client leaves the replicated tables serving too.
  follower_->Shutdown();
  EXPECT_EQ(follower_dispatcher.Handle("RUN t all"), reference);
}

TEST_F(ReplicationTest, FollowerDiscoversTablesCreatedAfterItStarted) {
  StartFollower();  // nothing to replicate yet
  testing::Client client(leader_->port());
  const std::vector<std::string> setup = {
      "CREATE late CYCLIC 5 2 2",
      "APPEND late 0 1 2 3 4 ; 4 3 2 1 0",
      "FLUSH late",
  };
  ASSERT_TRUE(client.Send(testing::JoinRequests(setup)));
  for (const std::string& response : client.ReadLines(setup.size())) {
    ASSERT_EQ(response.rfind("OK", 0), 0u) << response;
  }
  ASSERT_TRUE(WaitUntil([&] { return FollowerConverged("late", 2); }))
      << FollowerStats("late");
  ASSERT_TRUE(client.Send("RUN late all\n"));
  Dispatcher follower_dispatcher(&follower_manager_);
  EXPECT_EQ(follower_dispatcher.Handle("RUN late all"),
            client.ReadLines(1)[0]);
}

}  // namespace
}  // namespace manirank

#endif  // MANIRANK_SERVE_HAVE_SOCKETS
