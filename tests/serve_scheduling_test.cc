// Scheduling-focused tests for the multi-event-loop ServeExecutor
// (serve/executor.h): a 256-connection pipelined burst that must stay
// bit-identical to the synchronous Dispatcher under BOTH poller backends
// (forced via MANIRANK_POLLER), the METRICS response surface, and the
// weighted-fair-queue guarantee that a saturated table cannot starve a
// light table's request behind its backlog.

#include "serve/executor.h"

#include <gtest/gtest.h>

#ifdef MANIRANK_SERVE_HAVE_SOCKETS

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/context_manager.h"
#include "serve/protocol.h"
#include "serve_test_util.h"
#include "test_util.h"
#include "util/event_poller.h"

namespace manirank {
namespace {

using serve::ContextManager;
using serve::Dispatcher;
using serve::ServeExecutor;
using serve::ServerOptions;
using testing::Client;
using testing::ScopedPollerEnv;
using testing::SyncReference;

/// Raises RLIMIT_NOFILE toward the hard limit and returns how many
/// loopback connections the burst test can afford: each costs two fds
/// (client + accepted), plus slack for gtest, listeners, and pipes.
size_t AffordableConnections(size_t wanted) {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 64;
  rlim_t target = limit.rlim_max == RLIM_INFINITY
                      ? static_cast<rlim_t>(4096)
                      : std::min<rlim_t>(limit.rlim_max, 4096);
  if (limit.rlim_cur < target) {
    limit.rlim_cur = target;
    ::setrlimit(RLIMIT_NOFILE, &limit);
    ::getrlimit(RLIMIT_NOFILE, &limit);
  }
  const rlim_t slack = 96;
  if (limit.rlim_cur <= slack) return 8;
  const size_t affordable = static_cast<size_t>((limit.rlim_cur - slack) / 2);
  return std::min(wanted, affordable);
}

/// Each connection owns one table, so every response is deterministic
/// per connection no matter how the loops interleave the streams.
std::vector<std::string> PerConnectionWorkload(size_t index) {
  const std::string table = "burst" + std::to_string(index);
  return {
      "CREATE " + table + " CYCLIC 6 2 2",
      "APPEND " + table + " 0 1 2 3 4 5 ; 5 4 3 2 1 0",
      "RUN " + table + " A3",
      "STATS " + table,
      "REMOVE " + table + " 0",
      "FLUSH " + table,
      "STATS " + table,
      "DROP " + table,
  };
}

/// 256 concurrent pipelined connections against a sharded executor
/// (io_threads=2 exercises SO_REUSEPORT accept distribution even on one
/// core). Every connection's response stream must be bit-identical to a
/// synchronous replay of its own requests.
void ExpectBurstBitIdentical(const char* poller_env,
                             const char* expect_poller) {
  ScopedPollerEnv scoped(poller_env);
  ContextManager manager;
  ServerOptions options;
  options.workers = 3;
  options.io_threads = 2;
  ServeExecutor server(&manager, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  EXPECT_STREQ(server.poller_name(), expect_poller);
  EXPECT_EQ(server.io_loops(), 2u);

  const size_t kConnections = AffordableConnections(256);
  ASSERT_GE(kConnections, 8u);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kConnections);
  for (size_t i = 0; i < kConnections; ++i) {
    clients.emplace_back([&, i] {
      const std::vector<std::string> requests = PerConnectionWorkload(i);
      ContextManager reference_manager;
      const std::vector<std::string> expected =
          SyncReference(requests, &reference_manager);
      Client client(static_cast<int>(server.port()));
      if (!client.Send(testing::JoinRequests(requests))) {
        mismatches.fetch_add(1);
        return;
      }
      client.HalfClose();
      const std::vector<std::string> received = client.ReadLinesUntilEof();
      if (received != expected) mismatches.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0) << "of " << kConnections << " connections";

  // The per-loop accept counters must account for every connection.
  Client probe(static_cast<int>(server.port()));
  ASSERT_TRUE(probe.Send("METRICS\n"));
  const std::vector<std::string> metrics = probe.ReadLines(1);
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].rfind("OK METRICS poller=", 0), 0u) << metrics[0];
  EXPECT_NE(metrics[0].find(" accepted=" +
                            std::to_string(kConnections + 1) + " "),
            std::string::npos)
      << metrics[0];
  server.Shutdown();
}

TEST(ServeSchedulingTest, BurstBitIdenticalUnderPoll) {
  ExpectBurstBitIdentical("poll", "poll");
}

TEST(ServeSchedulingTest, BurstBitIdenticalUnderEpoll) {
#if MANIRANK_HAVE_EPOLL
  ExpectBurstBitIdentical("epoll", "epoll");
#else
  // Forcing epoll on a platform without it falls back to poll (with a
  // one-time warning); the wire contract must hold regardless.
  ExpectBurstBitIdentical("epoll", "poll");
#endif
}

/// METRICS is only answerable by the executor front end; the synchronous
/// Dispatcher (stdin / --serve replay / --threaded) reports unavailable.
TEST(ServeSchedulingTest, MetricsSurface) {
  ContextManager manager;
  Dispatcher sync_dispatcher(&manager);
  EXPECT_EQ(sync_dispatcher.Handle("METRICS").rfind("ERR unavailable:", 0),
            0u);
  EXPECT_EQ(sync_dispatcher.Handle("METRICS now").rfind("ERR bad-request:", 0),
            0u);

  ServerOptions options;
  options.workers = 2;
  ServeExecutor server(&manager, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client(static_cast<int>(server.port()));
  ASSERT_TRUE(client.Send("STATS nosuch\nMETRICS\n"));
  const std::vector<std::string> lines = client.ReadLines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ERR no-such-table:", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("OK METRICS poller=", 0), 0u) << lines[1];
  for (const char* field :
       {" io_loops=", " workers=", " accepted=", " served=", " inline=",
        " parked_drains=", " bytes_in=", " bytes_out=",
        " backpressure_stalls=", " emfile_rejected=", " loop0="}) {
    EXPECT_NE(lines[1].find(field), std::string::npos)
        << "missing " << field << " in " << lines[1];
  }
  server.Shutdown();
}

/// Weighted fair queuing: with a single worker pinned down by a
/// long-running exact solve, eight queued RUNs against the hot table
/// must not starve a later RUN against a light table — the light lane's
/// virtual start time beats the hot lane's accumulated drain weight, so
/// the light response arrives after at most a couple of hot ones.
/// Arrival-order FIFO (the old scheduler) would serve all eight hot
/// requests first.
TEST(ServeSchedulingTest, LightTableNotStarvedBehindHotBacklog) {
  ContextManager manager;
  ServerOptions options;
  options.workers = 1;
  options.io_threads = 1;
  ServeExecutor server(&manager, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    // "slow" is sized so the exact Fair-Kemeny solve runs into its time
    // limit: four strongly conflicting rankings over 40 candidates.
    std::vector<std::string> setup = {
        "CREATE slow CYCLIC 40 2 2",
        "CREATE hot CYCLIC 8 2 2",
        "CREATE light CYCLIC 8 2 2",
        "APPEND hot 0 1 2 3 4 5 6 7",
        "APPEND light 7 6 5 4 3 2 1 0",
    };
    std::string forward, backward, evens;
    for (int i = 0; i < 40; ++i) {
      forward += (i ? " " : "") + std::to_string(i);
      backward += (i ? " " : "") + std::to_string(39 - i);
      evens += (i ? " " : "") + std::to_string((i * 2) % 40 + (i >= 20));
    }
    setup.push_back("APPEND slow " + forward + " ; " + backward);
    setup.push_back("APPEND slow " + evens);
    Client setup_client(static_cast<int>(server.port()));
    ASSERT_TRUE(setup_client.Send(testing::JoinRequests(setup)));
    for (const std::string& line : setup_client.ReadLines(setup.size())) {
      ASSERT_EQ(line.rfind("OK ", 0), 0u) << line;
    }
  }

  // Occupy the single worker for ~1 second...
  Client blocker(static_cast<int>(server.port()));
  ASSERT_TRUE(blocker.Send("RUN slow A1 LIMIT 1.0\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // ...queue eight hot-table RUNs from eight connections...
  std::vector<std::unique_ptr<Client>> hot_clients;
  for (int i = 0; i < 8; ++i) {
    hot_clients.push_back(
        std::make_unique<Client>(static_cast<int>(server.port())));
    ASSERT_TRUE(hot_clients.back()->Send("RUN hot A3\n"));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  // ...then one light-table RUN, arriving last.
  Client light(static_cast<int>(server.port()));
  ASSERT_TRUE(light.Send("RUN light A3\n"));

  std::atomic<int> hot_done{0};
  std::vector<std::thread> readers;
  for (auto& hot : hot_clients) {
    readers.emplace_back([&hot, &hot_done] {
      const std::vector<std::string> lines = hot->ReadLines(1);
      ASSERT_EQ(lines.size(), 1u);
      EXPECT_EQ(lines[0].rfind("OK RUN hot", 0), 0u) << lines[0];
      hot_done.fetch_add(1);
    });
  }
  const std::vector<std::string> light_lines = light.ReadLines(1);
  const int hot_before_light = hot_done.load();
  ASSERT_EQ(light_lines.size(), 1u);
  EXPECT_EQ(light_lines[0].rfind("OK RUN light", 0), 0u) << light_lines[0];
  // WFQ serves the light request right after the in-flight hot one;
  // allow generous slack for reader-thread scheduling, while FIFO would
  // reach 8 here.
  EXPECT_LE(hot_before_light, 4);

  for (std::thread& t : readers) t.join();
  const std::vector<std::string> blocker_lines = blocker.ReadLines(1);
  ASSERT_EQ(blocker_lines.size(), 1u);
  EXPECT_EQ(blocker_lines[0].rfind("OK RUN slow", 0), 0u) << blocker_lines[0];
  server.Shutdown();
}

}  // namespace
}  // namespace manirank

#endif  // MANIRANK_SERVE_HAVE_SOCKETS
