// Result-cache + SELECT serving tests: the generation-keyed consensus
// result cache must be invisible in response bytes (a cached hit is
// byte-identical to a cold recompute, pinned by a cache-disabled twin
// replaying the same workload), correct across invalidation (every fold
// moves the generation and strands old entries), and honest in its
// counters. SELECT gets its own fuzz sweep with a generation-only
// invariant: ERR infeasible is the one ERR that follows a successful
// computation, so it may move runs/cache counters while the applied
// state stays put.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/context_manager.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "util/rng.h"

namespace manirank {
namespace {

using serve::ContextManager;
using serve::Dispatcher;
using serve::TableStats;

/// Masks the volatile counter fields of a STATS response — runs= moves
/// with every consensus run and the cache_* fields differ between a
/// cache-enabled and a cache-disabled server by design. Everything else
/// (generation, sizes, pending ops) must stay twin-identical.
std::string MaskCounters(std::string stats) {
  for (const std::string field :
       {" runs=", " cache_hits=", " cache_misses=", " cache_entries="}) {
    const size_t at = stats.find(field);
    if (at == std::string::npos) continue;
    size_t end = at + field.size();
    while (end < stats.size() && stats[end] != ' ') ++end;
    stats.replace(at, end - at, field + "_");
  }
  return stats;
}

/// Extracts the generation= field from a STATS response (or returns the
/// whole response when there is none — e.g. ERR no-such-table — so the
/// value still works as a state fingerprint).
std::string GenerationOf(const std::string& stats) {
  const size_t at = stats.find(" generation=");
  if (at == std::string::npos) return stats;
  size_t end = at + 12;
  while (end < stats.size() && stats[end] != ' ') ++end;
  return stats.substr(at, end - at);
}

class SelectCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dispatcher_ = std::make_unique<Dispatcher>(&manager_);
    ASSERT_TRUE(IsOk(Handle("CREATE t CYCLIC 6 2 3")));
    ASSERT_TRUE(IsOk(Handle("APPEND t 0 1 2 3 4 5 ; 5 4 3 2 1 0 ; "
                            "1 0 3 2 5 4")));
    ASSERT_TRUE(IsOk(Handle("FLUSH t")));
  }

  std::string Handle(const std::string& line) {
    return dispatcher_->Handle(line);
  }
  static bool IsOk(const std::string& r) { return r.rfind("OK", 0) == 0; }
  static bool IsErr(const std::string& r) { return r.rfind("ERR ", 0) == 0; }

  TableStats Stats() { return manager_.Stats("t"); }

  ContextManager manager_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

TEST_F(SelectCacheTest, RepeatRunsHitAndFoldsInvalidate) {
  TableStats s = Stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 0u);
  EXPECT_EQ(s.cache_entries, 0u);

  const std::string cold = Handle("RUN t A3");
  ASSERT_TRUE(IsOk(cold));
  s = Stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.cache_entries, 1u);

  // A repeat at the same generation is a hit — and byte-identical.
  EXPECT_EQ(Handle("RUN t A3"), cold);
  s = Stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.cache_entries, 1u);

  // A different method is its own key.
  ASSERT_TRUE(IsOk(Handle("RUN t A4")));
  s = Stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 2u);
  EXPECT_EQ(s.cache_entries, 2u);

  // A fold moves the generation and strands every old entry: the next
  // RUN is a miss and the dead generation has been evicted.
  ASSERT_TRUE(IsOk(Handle("APPEND t 2 3 0 1 4 5")));
  ASSERT_TRUE(IsOk(Handle("FLUSH t")));
  s = Stats();
  EXPECT_EQ(s.cache_entries, 0u);
  ASSERT_TRUE(IsOk(Handle("RUN t A3")));
  s = Stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 3u);
  EXPECT_EQ(s.cache_entries, 1u);
}

TEST_F(SelectCacheTest, SelectHitsCacheAndBumpsRunsOncePerServe) {
  const std::string cold = Handle("SELECT t 3 ATTR 0 1 2 3");
  ASSERT_TRUE(IsOk(cold)) << cold;
  // The selection-rate audit rides every OK response: one
  // adverse-impact ratio per constrained grouping and the aggregate
  // four-fifths verdict.
  EXPECT_NE(cold.find(" air="), std::string::npos) << cold;
  EXPECT_NE(cold.find(" four_fifths="), std::string::npos) << cold;
  const uint64_t runs_after_cold = Stats().runs;
  // Cold SELECT ran one consensus (the A3 leg) and inserted two entries:
  // the consensus result and the select outcome.
  EXPECT_EQ(Stats().cache_entries, 2u);

  const std::string warm = Handle("SELECT t 3 ATTR 0 1 2 3");
  EXPECT_EQ(warm, cold);
  // Every served SELECT bumps runs exactly once, hit or cold.
  EXPECT_EQ(Stats().runs, runs_after_cold + 1);
  EXPECT_EQ(Stats().cache_entries, 2u);
  EXPECT_GE(Stats().cache_hits, 1u);

  // A different k is a different key, but shares the cached consensus.
  const uint64_t misses_before = Stats().cache_misses;
  const uint64_t hits_before = Stats().cache_hits;
  ASSERT_TRUE(IsOk(Handle("SELECT t 2 ATTR 0 1 2 3")));
  EXPECT_EQ(Stats().cache_hits, hits_before + 1);    // consensus leg hit
  EXPECT_EQ(Stats().cache_misses, misses_before + 1);  // new select key
  EXPECT_EQ(Stats().cache_entries, 3u);
}

TEST_F(SelectCacheTest, InfeasibleSelectDrawsItsOwnCodeDeterministically) {
  // Attribute 0 group 0 has 3 members; demanding 4 is provably
  // infeasible. The computation SUCCEEDED — this ERR may move counters.
  const uint64_t generation = Stats().generation;
  const std::string first = Handle("SELECT t 4 ATTR 0 0 4 6");
  EXPECT_EQ(first.rfind("ERR infeasible:", 0), 0u) << first;
  // The proof is cached; the repeat must be byte-identical.
  EXPECT_EQ(Handle("SELECT t 4 ATTR 0 0 4 6"), first);
  // The generation never moved.
  EXPECT_EQ(Stats().generation, generation);
}

TEST_F(SelectCacheTest, ErrPathsMoveNoCacheCounters) {
  const TableStats before = Stats();
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"SELECT", "ERR bad-request"},
      {"SELECT t", "ERR bad-request"},
      {"SELECT ghost 3", "ERR no-such-table"},
      {"SELECT t 0", "ERR bad-request"},            // k < 1
      {"SELECT t x", "ERR bad-request"},            // non-numeric k
      {"SELECT t 7", "ERR bad-request"},            // k > n
      {"SELECT t 3 ATTR", "ERR bad-request"},       // clause arity
      {"SELECT t 3 ATTR 0 1 2", "ERR bad-request"},
      {"SELECT t 3 INTER 0 1", "ERR bad-request"},
      {"SELECT t 3 FROB 1", "ERR bad-request"},     // unknown clause
      {"SELECT t 3 ATTR 9 0 1 2", "ERR bad-request"},  // attribute range
      {"SELECT t 3 ATTR 0 9 1 2", "ERR bad-request"},  // group range
      {"SELECT t 3 ATTR 0 0 3 1", "ERR bad-request"},  // min > max
      {"SELECT t 3 LIMIT", "ERR bad-request"},
      {"SELECT t 3 LIMIT -1", "ERR bad-request"},
      {"SELECT t 3 LIMIT NaN", "ERR bad-request"},
  };
  for (const auto& [request, expected_prefix] : cases) {
    const std::string response = Handle(request);
    EXPECT_EQ(response.rfind(expected_prefix, 0), 0u)
        << "request '" << request << "' drew '" << response << "'";
    const TableStats after = Stats();
    EXPECT_EQ(after.cache_hits, before.cache_hits) << request;
    EXPECT_EQ(after.cache_misses, before.cache_misses) << request;
    EXPECT_EQ(after.cache_entries, before.cache_entries) << request;
    EXPECT_EQ(after.runs, before.runs) << request;
    EXPECT_EQ(after.generation, before.generation) << request;
  }
}

TEST_F(SelectCacheTest, DisabledCacheServesWithZeroCounterMovement) {
  manager_.SetResultCacheEnabled(false);
  const std::string a = Handle("RUN t A3");
  const std::string b = Handle("RUN t A3");
  ASSERT_TRUE(IsOk(a));
  EXPECT_EQ(a, b);
  ASSERT_TRUE(IsOk(Handle("SELECT t 3 ATTR 0 1 2 3")));
  const TableStats s = Stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 0u);
  EXPECT_EQ(s.cache_entries, 0u);
}

TEST(SelectCacheTwinTest, CachedServerIsByteIdenticalToUncachedTwin) {
  // The core bit-exactness contract: an interleaved workload of
  // mutations, folds, runs, sweeps, EVALs and SELECTs must produce the
  // same response bytes whether or not the result cache is on. Only the
  // counter fields of STATS may differ (masked).
  ContextManager cached_manager;
  ContextManager uncached_manager;
  uncached_manager.SetResultCacheEnabled(false);
  Dispatcher cached(&cached_manager);
  Dispatcher uncached(&uncached_manager);

  const std::vector<std::string> script = {
      "CREATE t CYCLIC 6 2 3",
      "APPEND t 0 1 2 3 4 5 ; 5 4 3 2 1 0",
      "FLUSH t",
      "RUN t A3",
      "RUN t A3",  // hit on the cached side
      "RUN t A4",
      "EVAL t 0 1 2 3 4 5",
      "EVAL t 0 1 2 3 4 5",
      "SELECT t 3",
      "SELECT t 3 ATTR 0 1 2 3",
      "SELECT t 3 ATTR 0 1 2 3",  // hit
      "SELECT t 4 ATTR 0 0 4 6",  // infeasible, cached proof
      "SELECT t 4 ATTR 0 0 4 6",
      "SELECT t 2 INTER 0 0 1",
      "STATS t",
      "APPEND t 2 3 0 1 4 5",     // queued...
      "SELECT t 3 ATTR 0 1 2 3",  // ...SELECT must not drain it
      "STATS t",
      "FLUSH t",                  // fold: invalidation point
      "RUN t A3",
      "SELECT t 3 ATTR 0 1 2 3",
      "RUN t all",
      "RUN t all",
      "EVAL t 5 4 3 2 1 0",
      "SELECT t 6 ATTR 1 0 0 2 ATTR 0 1 1 6",
      "REMOVE t 0",
      "FLUSH t",
      "RUN t A3",
      "SELECT t 3 ATTR 0 1 2 3",
      "STATS t",
  };
  for (const std::string& line : script) {
    const std::string a = cached.Handle(line);
    const std::string b = uncached.Handle(line);
    EXPECT_EQ(MaskCounters(a), MaskCounters(b)) << "request '" << line << "'";
  }
  // The cached side actually cached (the twin test would be vacuous
  // against a cache that never engages).
  const TableStats stats = cached_manager.Stats("t");
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  const TableStats twin = uncached_manager.Stats("t");
  EXPECT_EQ(twin.cache_hits, 0u);
  EXPECT_EQ(twin.cache_misses, 0u);
}

TEST(SelectCacheTwinTest, FuzzedSelectLinesKeepGenerationInvariant) {
  // SELECT-focused fuzz: random clause soup against a live table. Every
  // line draws exactly one OK/ERR, never throws, and no SELECT —
  // well-formed or not — ever moves the generation (SELECT is
  // read-only and non-draining). NOTE: full STATS invariance would be
  // wrong here; ERR infeasible legitimately moves runs/cache counters.
  ContextManager manager;
  Dispatcher dispatcher(&manager);
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 6 2 3")
                .rfind("OK", 0), 0u);
  ASSERT_EQ(dispatcher.Handle("APPEND t 0 1 2 3 4 5 ; 5 4 3 2 1 0")
                .rfind("OK", 0), 0u);
  ASSERT_EQ(dispatcher.Handle("FLUSH t").rfind("OK", 0), 0u);
  const std::string generation = GenerationOf(dispatcher.Handle("STATS t"));

  Rng rng(20260808);
  const std::vector<std::string> vocabulary = {
      "ATTR", "INTER", "LIMIT", "t",  "ghost", "0",   "1",     "2",
      "3",    "6",     "-1",    "x",  "0.5",   "NaN", "99999999999999999999",
      "🙂",   ";",     "",      "A3", "all"};
  int oks = 0;
  int errs = 0;
  for (int round = 0; round < 400; ++round) {
    std::ostringstream line;
    line << "SELECT";
    const int tokens = 1 + static_cast<int>(rng.NextUint64(9));
    for (int i = 0; i < tokens; ++i) {
      line << ' ' << vocabulary[rng.NextUint64(vocabulary.size())];
    }
    std::string response;
    ASSERT_NO_THROW(response = dispatcher.Handle(line.str())) << line.str();
    ASSERT_FALSE(response.empty()) << line.str();
    ASSERT_TRUE(response.rfind("OK", 0) == 0 ||
                response.rfind("ERR ", 0) == 0)
        << "request '" << line.str() << "' drew '" << response << "'";
    if (response.rfind("ERR ", 0) == 0) {
      ++errs;
    } else {
      ++oks;
    }
    EXPECT_EQ(GenerationOf(dispatcher.Handle("STATS t")), generation)
        << "request '" << line.str() << "' moved the generation";
  }
  // The sweep must exercise both outcomes to mean anything.
  EXPECT_GT(errs, 0);
  EXPECT_GT(oks, 0);
}

}  // namespace
}  // namespace manirank
