// End-to-end loopback-TCP tests for the serving front ends
// (serve/executor.h): the async ServeExecutor and the legacy
// ThreadPerConnectionServer. The serving equivalence contract extends to
// the wire: a pipelined client must receive exactly one response line
// per request, in request order, bit-identical to replaying the same
// request stream through a synchronous Dispatcher — no matter how the
// executor overlaps the work across its pool. Also covered: the final
// request arriving without a trailing newline, the 16 MiB oversize-line
// rejection (the client must actually RECEIVE the ERR — half-close +
// drain, not an immediate close/RST), read backpressure under a huge
// pipelined burst, and graceful shutdown.

#include "serve/executor.h"

#include <gtest/gtest.h>

#ifdef MANIRANK_SERVE_HAVE_SOCKETS

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/context_manager.h"
#include "serve/protocol.h"
#include "serve_test_util.h"

namespace manirank {
namespace {

using serve::ContextManager;
using serve::Dispatcher;
using serve::ServeExecutor;
using serve::ServerOptions;
using serve::ThreadPerConnectionServer;

using testing::Client;
using testing::JoinRequests;
using testing::MixedWorkload;
using testing::SyncReference;

template <typename Server>
void ExpectServesMixedWorkloadBitIdentical() {
  ContextManager manager;
  Server server(&manager, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // n stays small enough that the exact methods inside "RUN all" solve
  // outright: a run cut off by the 30 s default time limit would be both
  // slow and (worse) potentially nondeterministic across replays.
  const std::vector<std::string> requests = MixedWorkload("t", 10, 40);
  ContextManager reference_manager;
  const std::vector<std::string> expected =
      SyncReference(requests, &reference_manager);

  Client client(server.port());
  ASSERT_TRUE(client.Send(JoinRequests(requests)));
  client.HalfClose();
  EXPECT_EQ(client.ReadLinesUntilEof(), expected);
  server.Shutdown();
}

TEST(ServeSocketTest, ExecutorServesMixedWorkloadBitIdentical) {
  ExpectServesMixedWorkloadBitIdentical<ServeExecutor>();
}

TEST(ServeSocketTest, ThreadServerServesMixedWorkloadBitIdentical) {
  ExpectServesMixedWorkloadBitIdentical<ThreadPerConnectionServer>();
}

/// Multi-client pipelining: every client owns its tables, so each
/// response stream must be bit-identical to a serial replay even though
/// the executor interleaves all clients over a small shared pool — and
/// the hot tables' bulk folds force real drains mid-traffic.
TEST(ServeSocketTest, ExecutorMultiClientPipelinedInOrder) {
  ContextManager manager;
  ServerOptions options;
  options.workers = 3;  // fewer workers than clients: forced sharing
  ServeExecutor server(&manager, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kClients = 5;
  std::vector<std::vector<std::string>> requests;
  std::vector<std::vector<std::string>> expected;
  ContextManager reference_manager;
  requests.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    requests.push_back(MixedWorkload("c" + std::to_string(c), 10, 25));
  }
  for (int c = 0; c < kClients; ++c) {
    // One shared reference manager: the clients' tables are disjoint, so
    // serial per-client replay is the unique correct outcome... except
    // TABLES, which sees every client's tables — drop it from this
    // scenario to keep the comparison exact.
    auto& reqs = requests[c];
    reqs.pop_back();  // TABLES
    expected.push_back(SyncReference(reqs, &reference_manager));
  }

  std::vector<std::vector<std::string>> received(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      if (!client.Send(JoinRequests(requests[c]))) return;
      client.HalfClose();
      received[c] = client.ReadLinesUntilEof();
    });
  }
  for (std::thread& t : clients) t.join();
  uint64_t total_expected = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(received[c], expected[c]) << "client " << c;
    total_expected += expected[c].size();
  }
  // Comment/blank lines draw no response and are never scheduled, so the
  // served counter must land exactly on the answered-request count.
  EXPECT_EQ(server.requests_served(), total_expected);
  server.Shutdown();
}

/// Two clients hammering the SAME table: responses are timing-dependent
/// (generation counters move under each other), so assert protocol shape
/// and per-connection ordering only. This is the scenario that exercises
/// the IsDraining park path across connections.
TEST(ServeSocketTest, ExecutorSharedTableConcurrentRuns) {
  ContextManager manager;
  ServerOptions options;
  options.workers = 4;
  ServeExecutor server(&manager, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    Client setup(server.port());
    ASSERT_TRUE(setup.Send("CREATE shared CYCLIC 10 2 2\n"
                           "APPEND shared 0 1 2 3 4 5 6 7 8 9\n"));
    const std::vector<std::string> lines = setup.ReadLines(2);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].rfind("OK CREATE", 0), 0u) << lines[0];
    setup.HalfClose();
    setup.ReadLinesUntilEof();
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 12;
  std::vector<std::thread> clients;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      std::string wire;
      for (int r = 0; r < kRounds; ++r) {
        wire += "APPEND shared 9 8 7 6 5 4 3 2 1 0\n";
        wire += "RUN shared A4\n";
      }
      if (!client.Send(wire)) return;
      client.HalfClose();
      const std::vector<std::string> lines = client.ReadLinesUntilEof();
      if (lines.size() != 2 * kRounds) return;
      for (int r = 0; r < kRounds; ++r) {
        // In-order delivery: responses alternate APPEND/RUN exactly as
        // requested, whatever the cross-client interleaving did.
        if (lines[2 * r].rfind("OK APPEND shared", 0) == 0 &&
            lines[2 * r + 1].rfind("OK RUN shared", 0) == 0) {
          ++ok_counts[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[c], kRounds) << "client " << c;
  }
  server.Shutdown();
}

template <typename Server>
void ExpectAnswersFinalRequestWithoutNewline() {
  ContextManager manager;
  Server server(&manager, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client(server.port());
  ASSERT_TRUE(client.Send("CREATE t CYCLIC 6 2 2\nSTATS t"));  // no '\n'
  client.HalfClose();
  const std::vector<std::string> lines = client.ReadLinesUntilEof();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "OK CREATE t candidates=6 rankings=0");
  EXPECT_EQ(lines[1].rfind("OK STATS t ", 0), 0u) << lines[1];
  server.Shutdown();
}

TEST(ServeSocketTest, ExecutorAnswersFinalRequestWithoutNewline) {
  ExpectAnswersFinalRequestWithoutNewline<ServeExecutor>();
}

TEST(ServeSocketTest, ThreadServerAnswersFinalRequestWithoutNewline) {
  ExpectAnswersFinalRequestWithoutNewline<ThreadPerConnectionServer>();
}

template <typename Server>
void ExpectDeliversOversizeError() {
  ContextManager manager;
  Server server(&manager, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client(server.port());
  // A valid pipelined request first: its response must still arrive
  // before the oversize rejection.
  ASSERT_TRUE(client.Send("CREATE t CYCLIC 6 2 2\n"));
  // 17 MiB with no newline: the server must answer with the ERR line and
  // an orderly EOF — the half-close + drain fix; an immediate close()
  // would RST the unread junk away along with the response.
  const std::string junk(17u << 20, 'x');
  ASSERT_TRUE(client.Send(junk));
  client.HalfClose();
  const std::vector<std::string> lines = client.ReadLinesUntilEof();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "OK CREATE t candidates=6 rankings=0");
  EXPECT_EQ(lines[1], "ERR bad-request: request line exceeds 16 MiB");
  server.Shutdown();
}

TEST(ServeSocketTest, ExecutorDeliversOversizeLineError) {
  ExpectDeliversOversizeError<ServeExecutor>();
}

TEST(ServeSocketTest, ThreadServerDeliversOversizeLineError) {
  ExpectDeliversOversizeError<ThreadPerConnectionServer>();
}

/// A pipelined burst far beyond the in-flight budget: the executor stops
/// reading the socket (backpressure) instead of buffering without bound,
/// and still answers everything, in order, once the client drains.
TEST(ServeSocketTest, ExecutorBackpressuredBurstAnswersEverythingInOrder) {
  ContextManager manager;
  ServerOptions options;
  options.workers = 2;
  options.max_inflight_per_connection = 8;
  options.max_buffered_response_bytes = 1u << 14;
  ServeExecutor server(&manager, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kRequests = 4000;
  Client client(server.port());
  ASSERT_TRUE(client.Send("CREATE a CYCLIC 6 2 2\nCREATE b CYCLIC 8 2 2\n"));
  ASSERT_EQ(client.ReadLines(2).size(), 2u);

  // Writer and reader must run concurrently: with reading stopped on the
  // server side, the client's send() itself eventually blocks on the
  // kernel buffers — the test would deadlock if it wrote everything
  // before reading anything.
  std::thread writer([&] {
    std::string wire;
    for (int i = 0; i < kRequests / 2; ++i) {
      wire += "STATS a\nSTATS b\n";
    }
    client.Send(wire);
    client.HalfClose();
  });
  const std::vector<std::string> lines = client.ReadLinesUntilEof();
  writer.join();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const char* prefix = (i % 2 == 0) ? "OK STATS a " : "OK STATS b ";
    ASSERT_EQ(lines[i].rfind(prefix, 0), 0u)
        << "response " << i << ": " << lines[i];
  }
  server.Shutdown();
}

template <typename Server>
void ExpectGracefulShutdownWithIdleClient() {
  ContextManager manager;
  Server server(&manager, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client(server.port());
  ASSERT_TRUE(client.Send("CREATE t CYCLIC 6 2 2\n"));
  ASSERT_EQ(client.ReadLines(1).size(), 1u);

  // Shutdown with the client still connected: the server half-closes,
  // the client sees a clean EOF (no junk, no reset) and disconnects,
  // and Shutdown returns.
  std::thread stopper([&] { server.Shutdown(); });
  const std::vector<std::string> tail = client.ReadLinesUntilEof();
  EXPECT_TRUE(tail.empty());
  ::shutdown(client.fd(), SHUT_RDWR);
  stopper.join();

  // A fresh connection must now be refused.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  EXPECT_NE(::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::close(probe);
}

TEST(ServeSocketTest, ExecutorGracefulShutdownWithIdleClient) {
  ExpectGracefulShutdownWithIdleClient<ServeExecutor>();
}

/// One executor object must survive a Start → Shutdown → Start cycle
/// with its internal state (wake flag, stopping flag, pipes) fully
/// reset — a stale wake_pending_ from the first life would silently
/// swallow every wakeup of the second.
TEST(ServeSocketTest, ExecutorRestartsAfterShutdown) {
  ContextManager manager;
  ServeExecutor server(&manager, ServerOptions{});
  std::string error;
  for (int life = 0; life < 2; ++life) {
    ASSERT_TRUE(server.Start(&error)) << "life " << life << ": " << error;
    Client client(server.port());
    const std::string table = "t" + std::to_string(life);
    ASSERT_TRUE(client.Send("CREATE " + table +
                            " CYCLIC 6 2 2\nAPPEND " + table +
                            " 0 1 2 3 4 5\nRUN " + table + " A4\n"));
    const std::vector<std::string> lines = client.ReadLines(3);
    ASSERT_EQ(lines.size(), 3u) << "life " << life;
    EXPECT_EQ(lines[2].rfind("OK RUN " + table, 0), 0u) << lines[2];
    client.HalfClose();
    client.ReadLinesUntilEof();
    server.Shutdown();
  }
  // The table created in the first life survives on the shared manager.
  EXPECT_TRUE(manager.Has("t0"));
  EXPECT_TRUE(manager.Has("t1"));
}

TEST(ServeSocketTest, ThreadServerGracefulShutdownWithIdleClient) {
  ExpectGracefulShutdownWithIdleClient<ThreadPerConnectionServer>();
}

/// Shutdown must wait for in-flight requests and flush their responses:
/// the client half-closes (its whole pipeline is submitted), the server
/// is shut down mid-execution, and every ACCEPTED request's response
/// must still arrive. Requests the I/O thread had not yet read off the
/// socket when the shutdown landed are allowed to be dropped (that is
/// the documented contract), so the received stream must be a prefix of
/// the expected one — bit-identical as far as it goes, ending in an
/// orderly EOF, never garbage or a reset.
TEST(ServeSocketTest, ExecutorShutdownDrainsInFlightRequests) {
  ContextManager manager;
  ServerOptions options;
  options.workers = 2;
  ServeExecutor server(&manager, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::vector<std::string> requests = MixedWorkload("d", 10, 30);
  ContextManager reference_manager;
  const std::vector<std::string> expected =
      SyncReference(requests, &reference_manager);

  Client client(server.port());
  ASSERT_TRUE(client.Send(JoinRequests(requests)));
  client.HalfClose();
  // Wait for the first response, so the pipeline is demonstrably in
  // flight, then race shutdown against the rest on purpose.
  const std::vector<std::string> first = client.ReadLines(1);
  ASSERT_EQ(first.size(), 1u);
  std::thread stopper([&] { server.Shutdown(); });
  std::vector<std::string> received = first;
  for (std::string& line : client.ReadLinesUntilEof()) {
    received.push_back(std::move(line));
  }
  stopper.join();
  ASSERT_LE(received.size(), expected.size());
  for (size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i], expected[i]) << "response " << i;
  }
  EXPECT_GE(received.size(), 1u);
}

}  // namespace
}  // namespace manirank

#endif  // MANIRANK_SERVE_HAVE_SOCKETS
