// TSan-targeted serving-layer stress tests.
//
// The first suite reproduces the StatsFor coherence defect: STATS and
// APPEND responses read {generation, num_rankings} while another thread's
// FLUSH folds large batches under the exclusive gate. With the counters
// read one-at-a-time (the pre-fix code) a snapshot could pair a
// pre-mutation profile size with a post-mutation generation; the seqlock
// pair read (ConsensusContext::ProfileCounters) makes the append-only
// invariant  num_rankings == initial + generation  hold for every
// observation, and TSan holds the whole path to the no-data-race
// standard.
//
// The second suite drives the drain-failure recovery path from multiple
// threads: a poisoned backlog throws mid-apply while REMOVEs enqueue
// concurrently, and the resync must drop the stale ones instead of
// wedging the queue (see also the deterministic white-box resync test in
// serve_test.cc).
//
// The third suite is the durability crash injection: while an appender
// and a flusher hammer a durable table, the main thread takes raw byte
// copies of the durability directory at arbitrary instants — each copy
// is exactly the disk a kill -9 would leave behind, including images
// whose op log ends mid-write. Every image must cold-start into a table
// that serves bit-identically to SOME fold-boundary prefix of the append
// stream (see tests/oplog_test.cc for the deterministic byte-level torn
// tail sweep).

#include "serve/context_manager.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/ranking.h"
#include "serve/durability.h"
#include "serve/protocol.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank::serve {

/// White-box seam (friend of ContextManager): injects a pending append
/// whose ranking cannot apply — no public path can enqueue one, because
/// Append validates at enqueue time — so the tests can exercise the
/// mid-backlog failure resync deterministically.
struct ContextManagerTestPeer {
  static void InjectPoisonAppend(ContextManager& manager,
                                 const std::string& name, int wrong_size) {
    std::shared_ptr<ContextManager::Shard> shard = manager.Find(name);
    std::lock_guard<std::mutex> lock(shard->queue_mu);
    ContextManager::PendingOp op;
    op.rankings.push_back(Ranking::Identity(wrong_size));
    shard->queue.push_back(std::move(op));
    shard->queued_append_rankings += 1;
    shard->virtual_size += 1;
  }
};

namespace {

TEST(ServeStressTest, ConcurrentStatsAndAppendStayCoherentDuringFlush) {
  // Append-only workload: every applied ranking bumps the generation by
  // exactly one, so ANY coherent {generation, num_rankings} pair obeys
  //   num_rankings == kInitial + generation.
  // Readers hammer STATS (and check every APPEND response) while a
  // dedicated thread flushes the coalesced batches into the context.
  constexpr int kN = 20;
  constexpr size_t kInitial = 8;
  constexpr int kAppenders = 2;
  constexpr int kBatchesPerAppender = 120;
  constexpr int kRankingsPerBatch = 4;

  ContextManager manager;
  {
    Rng rng(601);
    std::vector<Ranking> initial;
    for (size_t i = 0; i < kInitial; ++i) {
      initial.push_back(testing::RandomRanking(kN, &rng));
    }
    manager.Create("t", testing::CyclicTable(kN, 2, 2), std::move(initial));
  }

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  const auto check = [&](const TableStats& stats) {
    if (stats.num_rankings != kInitial + stats.generation) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (int a = 0; a < kAppenders; ++a) {
    threads.emplace_back([&, a] {
      Rng rng(700 + static_cast<uint64_t>(a));
      for (int b = 0; b < kBatchesPerAppender; ++b) {
        std::vector<Ranking> batch;
        for (int r = 0; r < kRankingsPerBatch; ++r) {
          batch.push_back(testing::RandomRanking(kN, &rng));
        }
        // The APPEND response itself must be a coherent snapshot.
        check(manager.Append("t", std::move(batch)));
      }
    });
  }
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        check(manager.Stats("t"));
      }
    });
  }
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      manager.Flush("t");
    }
  });
  for (int a = 0; a < kAppenders; ++a) threads[a].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kAppenders; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(violations.load(), 0)
      << "STATS/APPEND paired a profile size with a generation from a "
         "different instant";
  manager.Flush("t");
  const TableStats final_stats = manager.Stats("t");
  const size_t total =
      kInitial + static_cast<size_t>(kAppenders) * kBatchesPerAppender *
                     kRankingsPerBatch;
  EXPECT_EQ(final_stats.num_rankings, total);
  EXPECT_EQ(final_stats.generation, total - kInitial);
  EXPECT_EQ(final_stats.pending_ops, 0u);
}

TEST(ServeStressTest, ConcurrentSnapshotsLandOnBatchBoundaries) {
  // SNAPSHOT during a flush storm: every emitted summary must be an
  // exact batch-boundary state (append-only invariant again), never a
  // half-applied wave.
  constexpr int kN = 16;
  constexpr size_t kInitial = 6;
  ContextManager manager;
  {
    Rng rng(611);
    std::vector<Ranking> initial;
    for (size_t i = 0; i < kInitial; ++i) {
      initial.push_back(testing::RandomRanking(kN, &rng));
    }
    manager.Create("t", testing::CyclicTable(kN, 2, 2), std::move(initial));
  }
  std::atomic<bool> done{false};
  std::thread appender([&] {
    Rng rng(612);
    for (int b = 0; b < 200; ++b) {
      manager.Append("t", {testing::RandomRanking(kN, &rng),
                           testing::RandomRanking(kN, &rng)});
    }
    done.store(true, std::memory_order_release);
  });
  std::thread flusher([&] {
    while (!done.load(std::memory_order_acquire)) manager.Flush("t");
  });
  int snapshots = 0;
  // The trailing `snapshots == 0` guard guarantees at least one snapshot
  // even when the appender outruns this loop entirely (the invariant
  // holds for the final state too).
  while (!done.load(std::memory_order_acquire) || snapshots == 0) {
    const TableSnapshot snap = manager.SnapshotTable("t");
    EXPECT_EQ(static_cast<uint64_t>(snap.summary.num_rankings),
              kInitial + snap.summary.generation)
        << "snapshot tore across a batch boundary";
    ++snapshots;
  }
  appender.join();
  flusher.join();
  EXPECT_GT(snapshots, 0);
}

TEST(ServeStressTest, FailedDrainWithConcurrentRemovesNeverWedges) {
  // A large valid batch followed by a poison op: while the flusher folds
  // the batch (per-ranking counter publication makes the progress
  // observable), the main thread enqueues REMOVEs near the top of the
  // virtual profile. When the poison throws, those queued removes survive
  // the steal — and the tallest of them references state the dropped
  // backlog never produced. The resync must discard it (accounted in
  // dropped_removes) so the next flush applies cleanly.
  // Sized for a loaded single-core machine: the warm fold takes tens of
  // milliseconds, so the enqueuing thread gets scheduled mid-apply even
  // when it loses the CPU for whole timeslices; the retry loop absorbs
  // the rare run where it still sleeps through the window.
  constexpr int kN = 40;
  constexpr size_t kInitial = 10;
  constexpr size_t kBatch = 8000;
  bool reproduced = false;
  for (int attempt = 0; attempt < 10 && !reproduced; ++attempt) {
    ContextManager manager;
    Rng rng(620 + static_cast<uint64_t>(attempt));
    std::vector<Ranking> initial;
    for (size_t i = 0; i < kInitial; ++i) {
      initial.push_back(testing::RandomRanking(kN, &rng));
    }
    manager.Create("t", testing::CyclicTable(kN, 2, 2), std::move(initial));
    // Warm the precedence matrix: the batch then folds at O(n^2) per
    // ranking, keeping the apply window wide open for the enqueues below.
    manager.Run("t", "A4");
    std::vector<Ranking> batch;
    for (size_t i = 0; i < kBatch; ++i) {
      batch.push_back(testing::RandomRanking(kN, &rng));
    }
    manager.Append("t", std::move(batch));
    ContextManagerTestPeer::InjectPoisonAppend(manager, "t", kN - 1);
    const size_t vsize = kInitial + kBatch + 1;  // applied + batch + poison

    std::thread flusher([&] {
      EXPECT_THROW(manager.Flush("t"), std::invalid_argument);
    });
    // Wait until the flusher is provably inside the batch apply (the
    // counters publish per folded ranking), then enqueue removes against
    // the top of the virtual profile.
    while (manager.Stats("t").num_rankings <= kInitial) {
      std::this_thread::yield();
    }
    size_t enqueued = 0;
    try {
      for (size_t i = 1; i <= 3; ++i) {
        manager.Remove("t", vsize - i);
        ++enqueued;
      }
    } catch (const std::out_of_range&) {
      // The apply finished (and resynced) before we got all three in —
      // timing miss, retry the scenario.
    }
    flusher.join();
    if (enqueued < 3) continue;
    reproduced = true;

    // vsize-1 referenced the poison append's ranking, which was dropped
    // with the failed backlog: exactly one stale remove to discard.
    const TableStats stats = manager.Stats("t");
    EXPECT_EQ(stats.dropped_removes, 1u);
    EXPECT_EQ(stats.pending_ops, 2u);
    // The queue must drain cleanly now — before the fix the stale remove
    // re-threw std::out_of_range on every flush, wedging the shard.
    size_t applied = 0;
    EXPECT_NO_THROW(applied = manager.Flush("t"));
    EXPECT_EQ(applied, 2u);
    const TableStats drained = manager.Stats("t");
    EXPECT_EQ(drained.num_rankings, kInitial + kBatch - 2);
    EXPECT_EQ(drained.pending_ops, 0u);
    // And the shard still serves.
    EXPECT_NO_THROW(manager.Run("t", "A4"));
  }
  EXPECT_TRUE(reproduced)
      << "could not land a remove mid-apply in 10 attempts";
}

std::filesystem::path MakeStressTempDir(const std::string& tag) {
  static std::atomic<uint64_t> seq{0};
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("manirank_stress_" + tag + "_" + std::to_string(::getpid()) + "_" +
       std::to_string(seq.fetch_add(1)));
  std::filesystem::create_directories(path);
  return path;
}

/// Raw byte copy of the durability dir — deliberately lock-free, exactly
/// what a crash (or a naive backup job) would capture. The floor is
/// static during the append-only workload; the op log may be caught
/// mid-append, which cold start must treat as a torn tail.
void TakeCrashImage(const std::filesystem::path& from,
                    const std::filesystem::path& to) {
  std::filesystem::create_directories(to);
  for (const auto& entry : std::filesystem::directory_iterator(from)) {
    std::filesystem::copy_file(
        entry.path(), to / entry.path().filename(),
        std::filesystem::copy_options::overwrite_existing);
  }
}

TEST(ServeStressTest, CrashImageColdStartServesAFoldBoundaryPrefix) {
  constexpr int kN = 12;
  constexpr size_t kInitial = 6;
  constexpr size_t kBatches = 150;
  constexpr size_t kPerBatch = 2;
  constexpr size_t kMaxMidTrafficImages = 5;

  // Pre-generate the whole append stream so any recovered prefix can be
  // replayed into a reference twin after the fact.
  Rng rng(808);
  std::vector<Ranking> initial;
  for (size_t i = 0; i < kInitial; ++i) {
    initial.push_back(testing::RandomRanking(kN, &rng));
  }
  std::vector<Ranking> stream;
  for (size_t i = 0; i < kBatches * kPerBatch; ++i) {
    stream.push_back(testing::RandomRanking(kN, &rng));
  }

  const std::filesystem::path live = MakeStressTempDir("live");
  std::vector<std::filesystem::path> images;
  {
    ContextManager manager;
    DurabilityManager durability(live.string(), &manager);
    ASSERT_TRUE(durability.ColdStart().empty());
    durability.Attach();
    manager.Create("t", testing::CyclicTable(kN, 2, 2), initial);

    std::atomic<bool> done{false};
    std::thread appender([&] {
      for (size_t b = 0; b < kBatches; ++b) {
        std::vector<Ranking> batch(stream.begin() + b * kPerBatch,
                                   stream.begin() + (b + 1) * kPerBatch);
        manager.Append("t", std::move(batch));
      }
      done.store(true, std::memory_order_release);
    });
    std::thread flusher([&] {
      while (!done.load(std::memory_order_acquire)) manager.Flush("t");
    });
    while (!done.load(std::memory_order_acquire)) {
      if (images.size() < kMaxMidTrafficImages) {
        const std::filesystem::path image =
            MakeStressTempDir("image_" + std::to_string(images.size()));
        TakeCrashImage(live, image);
        images.push_back(image);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    appender.join();
    flusher.join();
    manager.Flush("t");
    // The post-quiescence image must recover the ENTIRE stream; it also
    // donates the torn-tail variant below.
    const std::filesystem::path final_image = MakeStressTempDir("image_final");
    TakeCrashImage(live, final_image);
    images.push_back(final_image);
  }  // the "process" dies here — only the images survive

  // Torn-tail variant: chop one byte off the final image's log, exactly
  // the on-disk shape of a kill -9 that landed mid-append.
  {
    const std::filesystem::path torn = MakeStressTempDir("image_torn");
    TakeCrashImage(images.back(), torn);
    const std::filesystem::path log = torn / "t.oplog";
    const uintmax_t size = std::filesystem::file_size(log);
    ASSERT_GT(size, 1u);
    std::filesystem::resize_file(log, size - 1);
    images.push_back(torn);
  }

  const size_t total = kBatches * kPerBatch;
  bool saw_partial = false;
  for (size_t i = 0; i < images.size(); ++i) {
    ContextManager restored_manager;
    DurabilityManager restored(images[i].string(), &restored_manager);
    std::vector<DurabilityManager::RestoredTable> report;
    ASSERT_NO_THROW(report = restored.ColdStart()) << images[i];
    ASSERT_EQ(report.size(), 1u) << images[i];
    EXPECT_FALSE(report[0].summarized);

    // Append-only workload: the recovered state must sit on a fold
    // boundary, i.e. be the first `generation` rankings of the stream.
    const TableStats stats = restored_manager.Stats("t");
    ASSERT_GE(stats.num_rankings, kInitial) << images[i];
    const size_t prefix = stats.num_rankings - kInitial;
    EXPECT_EQ(stats.generation, prefix) << images[i];
    ASSERT_LE(prefix, total) << images[i];
    if (prefix < total) saw_partial = true;
    const bool is_final_image = i == images.size() - 2;
    if (is_final_image) EXPECT_EQ(prefix, total);
    if (i == images.size() - 1) {  // the torn variant dropped >= 1 record
      EXPECT_FALSE(report[0].torn_tail.empty());
      EXPECT_LT(prefix, total);
    }

    ContextManager twin_manager;
    twin_manager.Create("t", testing::CyclicTable(kN, 2, 2), initial);
    if (prefix > 0) {
      twin_manager.Append("t", std::vector<Ranking>(
                                   stream.begin(), stream.begin() + prefix));
      twin_manager.Flush("t");
    }
    Dispatcher a(&restored_manager);
    Dispatcher b(&twin_manager);
    const std::string run = "RUN t all LIMIT 60";
    EXPECT_EQ(a.Handle(run), b.Handle(run)) << images[i];
    // (No raw STATS diff here: replay folds one batch per log record, so
    // applied_batches legitimately differs from the twin's single fold.)
    EXPECT_EQ(restored_manager.Stats("t").num_rankings,
              twin_manager.Stats("t").num_rankings);
  }
  // With 2ms between images against a 150-batch stream this never
  // triggers in practice — but guard it so a machine fast enough to
  // outrun every copy fails loudly instead of silently testing nothing.
  EXPECT_TRUE(saw_partial)
      << "every crash image caught the finished stream; nothing was "
         "exercised mid-traffic";

  for (const std::filesystem::path& image : images) {
    std::filesystem::remove_all(image);
  }
  std::filesystem::remove_all(live);
}

}  // namespace
}  // namespace manirank::serve
