// TSan-targeted serving-layer stress tests.
//
// The first suite reproduces the StatsFor coherence defect: STATS and
// APPEND responses read {generation, num_rankings} while another thread's
// FLUSH folds large batches under the exclusive gate. With the counters
// read one-at-a-time (the pre-fix code) a snapshot could pair a
// pre-mutation profile size with a post-mutation generation; the seqlock
// pair read (ConsensusContext::ProfileCounters) makes the append-only
// invariant  num_rankings == initial + generation  hold for every
// observation, and TSan holds the whole path to the no-data-race
// standard.
//
// The second suite drives the drain-failure recovery path from multiple
// threads: a poisoned backlog throws mid-apply while REMOVEs enqueue
// concurrently, and the resync must drop the stale ones instead of
// wedging the queue (see also the deterministic white-box resync test in
// serve_test.cc).

#include "serve/context_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/ranking.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank::serve {

/// White-box seam (friend of ContextManager): injects a pending append
/// whose ranking cannot apply — no public path can enqueue one, because
/// Append validates at enqueue time — so the tests can exercise the
/// mid-backlog failure resync deterministically.
struct ContextManagerTestPeer {
  static void InjectPoisonAppend(ContextManager& manager,
                                 const std::string& name, int wrong_size) {
    std::shared_ptr<ContextManager::Shard> shard = manager.Find(name);
    std::lock_guard<std::mutex> lock(shard->queue_mu);
    ContextManager::PendingOp op;
    op.rankings.push_back(Ranking::Identity(wrong_size));
    shard->queue.push_back(std::move(op));
    shard->queued_append_rankings += 1;
    shard->virtual_size += 1;
  }
};

namespace {

TEST(ServeStressTest, ConcurrentStatsAndAppendStayCoherentDuringFlush) {
  // Append-only workload: every applied ranking bumps the generation by
  // exactly one, so ANY coherent {generation, num_rankings} pair obeys
  //   num_rankings == kInitial + generation.
  // Readers hammer STATS (and check every APPEND response) while a
  // dedicated thread flushes the coalesced batches into the context.
  constexpr int kN = 20;
  constexpr size_t kInitial = 8;
  constexpr int kAppenders = 2;
  constexpr int kBatchesPerAppender = 120;
  constexpr int kRankingsPerBatch = 4;

  ContextManager manager;
  {
    Rng rng(601);
    std::vector<Ranking> initial;
    for (size_t i = 0; i < kInitial; ++i) {
      initial.push_back(testing::RandomRanking(kN, &rng));
    }
    manager.Create("t", testing::CyclicTable(kN, 2, 2), std::move(initial));
  }

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  const auto check = [&](const TableStats& stats) {
    if (stats.num_rankings != kInitial + stats.generation) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (int a = 0; a < kAppenders; ++a) {
    threads.emplace_back([&, a] {
      Rng rng(700 + static_cast<uint64_t>(a));
      for (int b = 0; b < kBatchesPerAppender; ++b) {
        std::vector<Ranking> batch;
        for (int r = 0; r < kRankingsPerBatch; ++r) {
          batch.push_back(testing::RandomRanking(kN, &rng));
        }
        // The APPEND response itself must be a coherent snapshot.
        check(manager.Append("t", std::move(batch)));
      }
    });
  }
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        check(manager.Stats("t"));
      }
    });
  }
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      manager.Flush("t");
    }
  });
  for (int a = 0; a < kAppenders; ++a) threads[a].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kAppenders; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(violations.load(), 0)
      << "STATS/APPEND paired a profile size with a generation from a "
         "different instant";
  manager.Flush("t");
  const TableStats final_stats = manager.Stats("t");
  const size_t total =
      kInitial + static_cast<size_t>(kAppenders) * kBatchesPerAppender *
                     kRankingsPerBatch;
  EXPECT_EQ(final_stats.num_rankings, total);
  EXPECT_EQ(final_stats.generation, total - kInitial);
  EXPECT_EQ(final_stats.pending_ops, 0u);
}

TEST(ServeStressTest, ConcurrentSnapshotsLandOnBatchBoundaries) {
  // SNAPSHOT during a flush storm: every emitted summary must be an
  // exact batch-boundary state (append-only invariant again), never a
  // half-applied wave.
  constexpr int kN = 16;
  constexpr size_t kInitial = 6;
  ContextManager manager;
  {
    Rng rng(611);
    std::vector<Ranking> initial;
    for (size_t i = 0; i < kInitial; ++i) {
      initial.push_back(testing::RandomRanking(kN, &rng));
    }
    manager.Create("t", testing::CyclicTable(kN, 2, 2), std::move(initial));
  }
  std::atomic<bool> done{false};
  std::thread appender([&] {
    Rng rng(612);
    for (int b = 0; b < 200; ++b) {
      manager.Append("t", {testing::RandomRanking(kN, &rng),
                           testing::RandomRanking(kN, &rng)});
    }
    done.store(true, std::memory_order_release);
  });
  std::thread flusher([&] {
    while (!done.load(std::memory_order_acquire)) manager.Flush("t");
  });
  int snapshots = 0;
  // The trailing `snapshots == 0` guard guarantees at least one snapshot
  // even when the appender outruns this loop entirely (the invariant
  // holds for the final state too).
  while (!done.load(std::memory_order_acquire) || snapshots == 0) {
    const TableSnapshot snap = manager.SnapshotTable("t");
    EXPECT_EQ(static_cast<uint64_t>(snap.summary.num_rankings),
              kInitial + snap.summary.generation)
        << "snapshot tore across a batch boundary";
    ++snapshots;
  }
  appender.join();
  flusher.join();
  EXPECT_GT(snapshots, 0);
}

TEST(ServeStressTest, FailedDrainWithConcurrentRemovesNeverWedges) {
  // A large valid batch followed by a poison op: while the flusher folds
  // the batch (per-ranking counter publication makes the progress
  // observable), the main thread enqueues REMOVEs near the top of the
  // virtual profile. When the poison throws, those queued removes survive
  // the steal — and the tallest of them references state the dropped
  // backlog never produced. The resync must discard it (accounted in
  // dropped_removes) so the next flush applies cleanly.
  // Sized for a loaded single-core machine: the warm fold takes tens of
  // milliseconds, so the enqueuing thread gets scheduled mid-apply even
  // when it loses the CPU for whole timeslices; the retry loop absorbs
  // the rare run where it still sleeps through the window.
  constexpr int kN = 40;
  constexpr size_t kInitial = 10;
  constexpr size_t kBatch = 8000;
  bool reproduced = false;
  for (int attempt = 0; attempt < 10 && !reproduced; ++attempt) {
    ContextManager manager;
    Rng rng(620 + static_cast<uint64_t>(attempt));
    std::vector<Ranking> initial;
    for (size_t i = 0; i < kInitial; ++i) {
      initial.push_back(testing::RandomRanking(kN, &rng));
    }
    manager.Create("t", testing::CyclicTable(kN, 2, 2), std::move(initial));
    // Warm the precedence matrix: the batch then folds at O(n^2) per
    // ranking, keeping the apply window wide open for the enqueues below.
    manager.Run("t", "A4");
    std::vector<Ranking> batch;
    for (size_t i = 0; i < kBatch; ++i) {
      batch.push_back(testing::RandomRanking(kN, &rng));
    }
    manager.Append("t", std::move(batch));
    ContextManagerTestPeer::InjectPoisonAppend(manager, "t", kN - 1);
    const size_t vsize = kInitial + kBatch + 1;  // applied + batch + poison

    std::thread flusher([&] {
      EXPECT_THROW(manager.Flush("t"), std::invalid_argument);
    });
    // Wait until the flusher is provably inside the batch apply (the
    // counters publish per folded ranking), then enqueue removes against
    // the top of the virtual profile.
    while (manager.Stats("t").num_rankings <= kInitial) {
      std::this_thread::yield();
    }
    size_t enqueued = 0;
    try {
      for (size_t i = 1; i <= 3; ++i) {
        manager.Remove("t", vsize - i);
        ++enqueued;
      }
    } catch (const std::out_of_range&) {
      // The apply finished (and resynced) before we got all three in —
      // timing miss, retry the scenario.
    }
    flusher.join();
    if (enqueued < 3) continue;
    reproduced = true;

    // vsize-1 referenced the poison append's ranking, which was dropped
    // with the failed backlog: exactly one stale remove to discard.
    const TableStats stats = manager.Stats("t");
    EXPECT_EQ(stats.dropped_removes, 1u);
    EXPECT_EQ(stats.pending_ops, 2u);
    // The queue must drain cleanly now — before the fix the stale remove
    // re-threw std::out_of_range on every flush, wedging the shard.
    size_t applied = 0;
    EXPECT_NO_THROW(applied = manager.Flush("t"));
    EXPECT_EQ(applied, 2u);
    const TableStats drained = manager.Stats("t");
    EXPECT_EQ(drained.num_rankings, kInitial + kBatch - 2);
    EXPECT_EQ(drained.pending_ops, 0u);
    // And the shard still serves.
    EXPECT_NO_THROW(manager.Run("t", "A4"));
  }
  EXPECT_TRUE(reproduced)
      << "could not land a remove mid-apply in 10 attempts";
}

}  // namespace
}  // namespace manirank::serve
