// Multi-table serving layer tests: ContextManager semantics (shards,
// coalescing mutation queue, stats) and the serving equivalence contract —
// a scripted multi-table workload replayed through the line protocol must
// produce consensus rankings bit-identical to fresh single-shot contexts
// built over the same surviving profiles.

#include "serve/context_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/method_registry.h"
#include "mallows/mallows.h"
#include "serve/protocol.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

using serve::ContextManager;
using serve::Dispatcher;

using serve::TableStats;

Ranking SampleFor(uint64_t seed, uint64_t index, int n) {
  Rng rng = MallowsModel::SampleRng(seed, index);
  MallowsModel model(Ranking::Identity(n), 0.5);
  return model.Sample(&rng);
}

TEST(ContextManagerTest, CreateDropHas) {
  ContextManager manager;
  EXPECT_EQ(manager.num_tables(), 0u);
  manager.Create("alpha", MakeCyclicTable(6, 2, 2));
  manager.Create("beta", MakeCyclicTable(8, 2, 2));
  EXPECT_TRUE(manager.Has("alpha"));
  EXPECT_TRUE(manager.Has("beta"));
  EXPECT_FALSE(manager.Has("gamma"));
  EXPECT_EQ(manager.num_tables(), 2u);
  EXPECT_EQ(manager.TableNames(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_THROW(manager.Create("alpha", MakeCyclicTable(6, 2, 2)),
               std::invalid_argument);
  EXPECT_THROW(manager.Create("", MakeCyclicTable(6, 2, 2)),
               std::invalid_argument);
  manager.Drop("alpha");
  EXPECT_FALSE(manager.Has("alpha"));
  EXPECT_THROW(manager.Drop("alpha"), std::invalid_argument);
  EXPECT_THROW(manager.Stats("alpha"), std::invalid_argument);
}

TEST(ContextManagerTest, AppendsCoalesceUntilTheNextQueryWave) {
  ContextManager manager;
  manager.Create("t", MakeCyclicTable(6, 2, 2),
                 {Ranking::Identity(6), Ranking::Identity(6).Reversed()});
  // Three APPEND requests between query waves → one coalesced pending op.
  for (int i = 0; i < 3; ++i) {
    manager.Append("t", {SampleFor(7, static_cast<uint64_t>(i), 6)});
  }
  TableStats stats = manager.Stats("t");
  EXPECT_EQ(stats.pending_ops, 1u);
  EXPECT_EQ(stats.pending_rankings, 3u);
  EXPECT_EQ(stats.num_rankings, 2u);   // nothing applied yet
  EXPECT_EQ(stats.generation, 0u);

  // A REMOVE breaks the append run; a later APPEND starts a new batch.
  manager.Remove("t", 0);
  manager.Append("t", {SampleFor(7, 10, 6)});
  stats = manager.Stats("t");
  EXPECT_EQ(stats.pending_ops, 3u);
  EXPECT_EQ(stats.pending_rankings, 4u);

  // The query wave drains the whole backlog: 4 adds + 1 remove.
  manager.Run("t", "A4");
  stats = manager.Stats("t");
  EXPECT_EQ(stats.pending_ops, 0u);
  EXPECT_EQ(stats.pending_rankings, 0u);
  EXPECT_EQ(stats.num_rankings, 5u);  // 2 + 4 - 1
  EXPECT_EQ(stats.generation, 5u);    // one bump per ranking added/removed
  EXPECT_EQ(stats.applied_batches, 2u);
  EXPECT_EQ(stats.applied_rankings, 5u);
  EXPECT_EQ(stats.runs, 1u);
}

TEST(ContextManagerTest, ValidationLeavesStateUntouched) {
  ContextManager manager;
  manager.Create("t", MakeCyclicTable(6, 2, 2), {Ranking::Identity(6)});
  const TableStats before = manager.Stats("t");
  // Wrong size, not a permutation, empty batch, bad index, bad table.
  EXPECT_THROW(manager.Append("t", {Ranking::Identity(5)}),
               std::invalid_argument);
  EXPECT_THROW(manager.Append("t", {}), std::invalid_argument);
  EXPECT_THROW(manager.Remove("t", 1), std::out_of_range);
  EXPECT_THROW(manager.Append("nope", {Ranking::Identity(6)}),
               std::invalid_argument);
  EXPECT_THROW(manager.Run("t", "Z9"), std::invalid_argument);
  const TableStats after = manager.Stats("t");
  EXPECT_EQ(after.generation, before.generation);
  EXPECT_EQ(after.pending_ops, before.pending_ops);
  EXPECT_EQ(after.num_rankings, before.num_rankings);
}

TEST(ContextManagerTest, RemoveAddressesTheVirtualProfile) {
  ContextManager manager;
  manager.Create("t", MakeCyclicTable(6, 2, 2), {Ranking::Identity(6)});
  // Profile has 1 applied ranking; queue 2 appends → virtual size 3, so
  // index 2 is legal even though nothing is applied yet.
  manager.Append("t", {SampleFor(9, 0, 6), SampleFor(9, 1, 6)});
  manager.Remove("t", 2);
  EXPECT_THROW(manager.Remove("t", 2), std::out_of_range);  // now virtual 2
  EXPECT_EQ(manager.Flush("t"), 3u);                        // 2 adds + 1 remove
  const TableStats stats = manager.Stats("t");
  EXPECT_EQ(stats.num_rankings, 2u);
  EXPECT_EQ(stats.pending_ops, 0u);
}

TEST(ContextManagerTest, FlushIsIdempotentAndCountsApplications) {
  ContextManager manager;
  manager.Create("t", MakeCyclicTable(6, 2, 2), {Ranking::Identity(6)});
  EXPECT_EQ(manager.Flush("t"), 0u);
  manager.Append("t", {SampleFor(11, 0, 6)});
  size_t applied = 0;
  EXPECT_TRUE(manager.TryFlush("t", &applied));
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(manager.Flush("t"), 0u);
}

// --- non-blocking drain scheduling hooks (async front ends) ----------------

TEST(ContextManagerTest, DrainObserverFiresPerExclusiveDrainWithTableName) {
  ContextManager manager;
  manager.Create("alpha", MakeCyclicTable(6, 2, 2), {Ranking::Identity(6)});
  manager.Create("beta", MakeCyclicTable(8, 2, 2), {Ranking::Identity(8)});
  std::vector<std::string> drained;
  manager.SetDrainObserver(
      [&](const std::string& table) { drained.push_back(table); });
  // The empty-queue fast path never claims the exclusive gate, so it
  // must not report a drain either.
  manager.Flush("alpha");
  EXPECT_TRUE(drained.empty());
  EXPECT_FALSE(manager.IsDraining("alpha"));
  // A real backlog fold reports exactly once, with the right name, and
  // the draining flag is clear by the time the observer has fired.
  manager.Append("alpha", {SampleFor(21, 0, 6)});
  manager.Flush("alpha");
  EXPECT_EQ(drained, (std::vector<std::string>{"alpha"}));
  EXPECT_FALSE(manager.IsDraining("alpha"));
  // Draining verbs (Run) report the same way; per-table attribution.
  manager.Append("beta", {SampleFor(22, 0, 8)});
  manager.Run("beta", "A4");
  EXPECT_EQ(drained, (std::vector<std::string>{"alpha", "beta"}));
  // Unknown tables are an advisory "no".
  EXPECT_FALSE(manager.IsDraining("nope"));
  manager.SetDrainObserver(nullptr);
  manager.Append("alpha", {SampleFor(23, 0, 6)});
  manager.Flush("alpha");
  EXPECT_EQ(drained.size(), 2u);  // cleared observer: no further calls
}

// IsDraining's mid-fold visibility is tested through the white-box drain
// seam at the bottom of this file (DrainSchedulingHookTest) — observing
// the advisory flag by racing a poller thread against a real fold is
// inherently timing-dependent and flakes on a loaded single-core box.

// --- the serving equivalence contract --------------------------------------

/// Shadow model of one table: the profile as a plain vector, mutated in
/// lockstep with the protocol script.
struct ShadowTable {
  int n = 0;
  std::vector<Ranking> profile;
};

std::string FormatAppend(const std::string& table,
                         const std::vector<Ranking>& rankings) {
  std::ostringstream os;
  os << "APPEND " << table;
  for (size_t i = 0; i < rankings.size(); ++i) {
    if (i != 0) os << " ;";
    for (CandidateId c : rankings[i].order()) os << ' ' << c;
  }
  return os.str();
}

std::vector<CandidateId> ParseConsensusField(const std::string& response,
                                             size_t from) {
  const size_t at = response.find("consensus=", from);
  std::vector<CandidateId> order;
  EXPECT_NE(at, std::string::npos) << response;
  if (at == std::string::npos) return order;
  std::istringstream is(response.substr(at + 10));
  std::string cell;
  while (std::getline(is, cell, ',')) {
    // The consensus field ends at the next space (RUN-all responses pack
    // several method results on one line).
    const size_t space = cell.find(' ');
    if (space != std::string::npos) {
      order.push_back(static_cast<CandidateId>(std::stol(cell.substr(0, space))));
      break;
    }
    order.push_back(static_cast<CandidateId>(std::stol(cell)));
  }
  return order;
}

TEST(ServingEquivalenceTest, ScriptedMultiTableWorkloadMatchesFreshContexts) {
  // The acceptance contract: a scripted workload over 3 tables with
  // interleaved APPEND / RUN / REMOVE, replayed through the line
  // protocol, must produce rankings bit-identical to single-shot
  // contexts freshly built over each table's surviving profile.
  ContextManager manager;
  Dispatcher dispatcher(&manager);
  std::map<std::string, ShadowTable> shadows;
  const std::vector<std::pair<std::string, int>> tables = {
      {"small", 8}, {"medium", 10}, {"wide", 12}};
  for (const auto& [name, n] : tables) {
    std::ostringstream os;
    os << "CREATE " << name << " CYCLIC " << n << " 2 2";
    ASSERT_EQ(dispatcher.Handle(os.str()).rfind("OK", 0), 0u);
    shadows[name] = ShadowTable{n, {}};
  }

  // The fast methods of the sweep (ILP-free), rotated per RUN request.
  const std::vector<std::string> methods = {"A2", "A3", "A4", "B1", "B2",
                                            "B3", "B4"};
  Rng script_rng(42);
  uint64_t sample_index = 0;
  int runs_checked = 0;
  for (int step = 0; step < 120; ++step) {
    auto& [name, n] = tables[script_rng.NextUint64(tables.size())];
    ShadowTable& shadow = shadows[name];
    const uint64_t action = script_rng.NextUint64(10);
    if (action < 5 || shadow.profile.size() < 4) {
      // APPEND a batch of 1..3 rankings.
      std::vector<Ranking> batch;
      const int k = 1 + static_cast<int>(script_rng.NextUint64(3));
      for (int i = 0; i < k; ++i) {
        batch.push_back(SampleFor(77, sample_index++, n));
      }
      const std::string response =
          dispatcher.Handle(FormatAppend(name, batch));
      ASSERT_EQ(response.rfind("OK APPEND", 0), 0u) << response;
      shadow.profile.insert(shadow.profile.end(), batch.begin(), batch.end());
    } else if (action < 7) {
      // REMOVE a random index of the virtual profile.
      const size_t index = script_rng.NextUint64(shadow.profile.size());
      const std::string response = dispatcher.Handle(
          "REMOVE " + name + " " + std::to_string(index));
      ASSERT_EQ(response.rfind("OK REMOVE", 0), 0u) << response;
      shadow.profile.erase(shadow.profile.begin() +
                           static_cast<ptrdiff_t>(index));
    } else {
      // RUN one method; the served consensus must equal a fresh context.
      const std::string& method =
          methods[script_rng.NextUint64(methods.size())];
      const std::string response = dispatcher.Handle(
          "RUN " + name + " " + method + " DELTA 0.2 LIMIT 60");
      ASSERT_EQ(response.rfind("OK RUN", 0), 0u) << response;
      const std::vector<CandidateId> served = ParseConsensusField(response, 0);

      CandidateTable fresh_table = MakeCyclicTable(shadow.n, 2, 2);
      ConsensusContext fresh(shadow.profile, fresh_table);
      ConsensusOptions options;
      options.delta = 0.2;
      options.time_limit_seconds = 60.0;
      const ConsensusOutput expected = fresh.RunMethod(method, options);
      EXPECT_EQ(served, expected.consensus.order())
          << "step " << step << " table " << name << " method " << method;
      ++runs_checked;
    }
  }
  ASSERT_GE(runs_checked, 20);

  // Epilogue: a full RUN-all sweep per table against fresh contexts.
  for (const auto& [name, n] : tables) {
    const ShadowTable& shadow = shadows.at(name);
    ASSERT_GE(shadow.profile.size(), 1u);
    const std::string response =
        dispatcher.Handle("RUN " + name + " all DELTA 0.2 LIMIT 60");
    ASSERT_EQ(response.rfind("OK RUN", 0), 0u) << response;
    CandidateTable fresh_table = MakeCyclicTable(n, 2, 2);
    ConsensusContext fresh(shadow.profile, fresh_table);
    ConsensusOptions options;
    options.delta = 0.2;
    options.time_limit_seconds = 60.0;
    const std::vector<ConsensusOutput> expected = fresh.RunAll(options);
    // Walk the packed response method by method.
    size_t cursor = 0;
    for (size_t i = 0; i < AllMethods().size(); ++i) {
      const std::string tag = " " + AllMethods()[i].id + " ";
      cursor = response.find(tag, cursor);
      ASSERT_NE(cursor, std::string::npos)
          << AllMethods()[i].id << ": " << response;
      EXPECT_EQ(ParseConsensusField(response, cursor),
                expected[i].consensus.order())
          << name << " " << AllMethods()[i].id;
    }
  }
}

}  // namespace
}  // namespace manirank

// --- drain-failure recovery -------------------------------------------------

namespace manirank::serve {

/// White-box seam (friend of ContextManager): no reachable public path can
/// make a validated backlog throw mid-apply or plant a stale remove, so
/// these tests build the failure states directly.
struct ContextManagerTestPeer {
  /// Queues a remove without validation or virtual-size bookkeeping —
  /// the state a remove is left in when a failed drain dropped the
  /// backlog ops its index assumed.
  static void InjectRemoveRaw(ContextManager& manager,
                              const std::string& name, size_t index) {
    std::shared_ptr<ContextManager::Shard> shard = manager.Find(name);
    std::lock_guard<std::mutex> lock(shard->queue_mu);
    ContextManager::PendingOp op;
    op.is_remove = true;
    op.remove_index = index;
    shard->queue.push_back(std::move(op));
  }

  /// Queues an append whose ranking cannot apply (wrong size), with the
  /// bookkeeping a 1-ranking append would have.
  static void InjectPoisonAppend(ContextManager& manager,
                                 const std::string& name, int wrong_size) {
    std::shared_ptr<ContextManager::Shard> shard = manager.Find(name);
    std::lock_guard<std::mutex> lock(shard->queue_mu);
    ContextManager::PendingOp op;
    op.rankings.push_back(Ranking::Identity(wrong_size));
    shard->queue.push_back(std::move(op));
    shard->queued_append_rankings += 1;
    shard->virtual_size += 1;
  }

  static void Resync(ContextManager& manager, const std::string& name) {
    ContextManager::ResyncQueueAfterFailedApply(*manager.Find(name));
  }

  /// Runs a real drain and invokes `probe` while the exclusive gate is
  /// still held — i.e. at the exact moment a concurrent scheduler's
  /// IsDraining query would need to say "yes". Timing-free alternative
  /// to racing a poller thread against the fold.
  static void DrainWithProbe(ContextManager& manager, const std::string& name,
                             const std::function<void()>& probe) {
    manager.Drain(*manager.Find(name), /*try_only=*/false, nullptr, probe);
  }
};

namespace {

std::vector<Ranking> InitialProfile(int n, size_t count, uint64_t seed) {
  std::vector<Ranking> profile;
  for (size_t i = 0; i < count; ++i) {
    Rng rng = MallowsModel::SampleRng(seed, i);
    profile.push_back(
        MallowsModel(Ranking::Identity(n), 0.5).Sample(&rng));
  }
  return profile;
}

TEST(DrainFailureRecoveryTest, ResyncDropsStaleRemovesInApplicationOrder) {
  // Queue after a hypothetical failed drain: [remove 7 (stale: only 5
  // rankings applied), remove 1, append x1, remove 4 (valid only because
  // the append precedes it)]. The resync must drop exactly the stale op,
  // account it, and leave a queue the next drain applies without a throw.
  ContextManager manager;
  manager.Create("t", MakeCyclicTable(6, 2, 2), InitialProfile(6, 5, 501));
  ContextManagerTestPeer::InjectRemoveRaw(manager, "t", 7);
  ContextManagerTestPeer::InjectRemoveRaw(manager, "t", 1);
  manager.Append("t", InitialProfile(6, 1, 502));
  ContextManagerTestPeer::InjectRemoveRaw(manager, "t", 4);
  ContextManagerTestPeer::Resync(manager, "t");

  TableStats stats = manager.Stats("t");
  EXPECT_EQ(stats.dropped_removes, 1u);
  EXPECT_EQ(stats.pending_ops, 3u);
  EXPECT_EQ(stats.pending_rankings, 1u);
  // 5 applied - remove1 + append - remove4 = 4, with no throw.
  size_t applied = 0;
  EXPECT_NO_THROW(applied = manager.Flush("t"));
  EXPECT_EQ(applied, 3u);
  stats = manager.Stats("t");
  EXPECT_EQ(stats.num_rankings, 4u);
  EXPECT_EQ(stats.pending_ops, 0u);
  EXPECT_NO_THROW(manager.Run("t", "A4"));
}

TEST(DrainSchedulingHookTest, IsDrainingIsVisibleUnderTheExclusiveGate) {
  // The moment a concurrent scheduler's IsDraining query must say "yes"
  // is while the exclusive gate is held for a backlog apply. The drain
  // seam's under-gate probe observes exactly that instant — no thread
  // race, no timing assumptions.
  ContextManager manager;
  manager.Create("t", MakeCyclicTable(6, 2, 2), InitialProfile(6, 2, 601));
  manager.Append("t", InitialProfile(6, 3, 602));
  ASSERT_FALSE(manager.IsDraining("t"));
  bool probed = false;
  ContextManagerTestPeer::DrainWithProbe(manager, "t", [&] {
    probed = true;
    EXPECT_TRUE(manager.IsDraining("t"));
    // Other tables (and unknown names) stay unaffected.
    EXPECT_FALSE(manager.IsDraining("elsewhere"));
  });
  EXPECT_TRUE(probed);
  EXPECT_FALSE(manager.IsDraining("t"));
  const TableStats stats = manager.Stats("t");
  EXPECT_EQ(stats.num_rankings, 5u);
  EXPECT_EQ(stats.pending_ops, 0u);
}

TEST(DrainFailureRecoveryTest, PoisonedBacklogFailsOnceThenRecovers) {
  // End-to-end through the real Drain catch path: a backlog of
  // [valid append x2, poison, remove] throws at the poison; the applied
  // prefix survives, the rest of the stolen backlog is dropped, the
  // bookkeeping resyncs, and the shard keeps serving.
  ContextManager manager;
  manager.Create("t", MakeCyclicTable(6, 2, 2), InitialProfile(6, 4, 503));
  std::vector<Ranking> good = InitialProfile(6, 2, 504);
  const std::vector<Ranking> surviving = [&] {
    std::vector<Ranking> all = InitialProfile(6, 4, 503);
    all.insert(all.end(), good.begin(), good.end());
    return all;
  }();
  manager.Append("t", std::move(good));
  ContextManagerTestPeer::InjectPoisonAppend(manager, "t", 5);
  manager.Remove("t", 6);  // valid against the virtual profile of 7
  EXPECT_THROW(manager.Flush("t"), std::invalid_argument);

  TableStats stats = manager.Stats("t");
  EXPECT_EQ(stats.num_rankings, 6u) << "applied prefix must survive";
  EXPECT_EQ(stats.pending_ops, 0u) << "stolen backlog is dropped";
  EXPECT_EQ(stats.pending_rankings, 0u);
  // The shard is fully servable afterwards, and enqueue validation uses
  // the resynced virtual size (index 6 is now out of range again).
  EXPECT_THROW(manager.Remove("t", 6), std::out_of_range);
  EXPECT_NO_THROW(manager.Remove("t", 5));
  EXPECT_EQ(manager.Flush("t"), 1u);
  ConsensusOptions options;
  options.time_limit_seconds = 60.0;
  const ConsensusOutput served = manager.Run("t", "A4", options);
  std::vector<Ranking> expected_profile(surviving.begin(),
                                        surviving.end() - 1);
  CandidateTable fresh_table = MakeCyclicTable(6, 2, 2);
  ConsensusContext fresh(expected_profile, fresh_table);
  EXPECT_EQ(served.consensus.order(),
            fresh.RunMethod("A4", options).consensus.order());
}

}  // namespace
}  // namespace manirank::serve
