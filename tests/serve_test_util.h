#ifndef MANIRANK_TESTS_SERVE_TEST_UTIL_H_
#define MANIRANK_TESTS_SERVE_TEST_UTIL_H_

// Shared helpers for the loopback-TCP serving tests (serve_socket_test,
// serve_scheduling_test): a blocking line client with receive timeout,
// the synchronous-Dispatcher ground truth every server must match
// bit-identically, and the deterministic mixed workload generator.

#include "serve/executor.h"

#ifdef MANIRANK_SERVE_HAVE_SOCKETS

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/context_manager.h"
#include "serve/protocol.h"

namespace manirank::testing {

#ifdef MSG_NOSIGNAL
inline constexpr int kClientSendFlags = MSG_NOSIGNAL;
#else
inline constexpr int kClientSendFlags = 0;
#endif

/// Blocking loopback client with a receive timeout, so a server bug
/// fails the test instead of hanging it.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0) << std::strerror(errno);
    timeval timeout{};
    timeout.tv_sec = 120;  // generous: the TSan job runs these too
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               kClientSendFlags);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until EOF and splits into lines (the trailing newline of the
  /// last response is consumed; an unterminated tail would be kept as a
  /// final element, which no correct server produces). Bytes already
  /// buffered by an earlier ReadLines call are consumed first.
  std::vector<std::string> ReadLinesUntilEof() {
    char chunk[65536];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) {
        ADD_FAILURE() << "recv: " << std::strerror(errno);
        break;
      }
      if (n == 0) break;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::vector<std::string> lines;
    std::istringstream is(buffer_);
    buffer_.clear();
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
  }

  /// Reads exactly `n` newline-terminated lines (without closing).
  /// Pipelined responses beyond the n-th stay buffered for later calls.
  std::vector<std::string> ReadLines(size_t n) {
    std::vector<std::string> lines;
    char chunk[65536];
    for (;;) {
      size_t start = 0;
      for (size_t nl = buffer_.find('\n');
           nl != std::string::npos && lines.size() < n;
           nl = buffer_.find('\n', start)) {
        lines.push_back(buffer_.substr(start, nl - start));
        start = nl + 1;
      }
      buffer_.erase(0, start);
      if (lines.size() == n) break;
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) {
        ADD_FAILURE() << "recv: "
                      << (got == 0 ? "unexpected EOF"
                                   : std::strerror(errno))
                      << " after " << lines.size() << "/" << n << " lines";
        break;
      }
      buffer_.append(chunk, static_cast<size_t>(got));
    }
    return lines;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// The ground truth the wire must match: the same request lines replayed
/// through a synchronous Dispatcher (skipping blank/comment no-response
/// lines, exactly as the servers do).
inline std::vector<std::string> SyncReference(
    const std::vector<std::string>& requests, serve::ContextManager* manager) {
  serve::Dispatcher dispatcher(manager);
  std::vector<std::string> responses;
  for (const std::string& request : requests) {
    std::string response = dispatcher.Handle(request);
    if (!response.empty()) responses.push_back(std::move(response));
  }
  return responses;
}

inline std::string JoinRequests(const std::vector<std::string>& requests) {
  std::string wire;
  for (const std::string& request : requests) {
    wire += request;
    wire += '\n';
  }
  return wire;
}

/// A deterministic mixed workload over tables owned by `prefix`: CREATE,
/// appends (some bulk), RUNs on several tables, STATS, REMOVE, FLUSH.
/// Distinct tables make cross-request overlap observable while keeping
/// every response bit-deterministic.
inline std::vector<std::string> MixedWorkload(const std::string& prefix, int n,
                                              int bulk_rankings) {
  std::vector<std::string> requests;
  const std::string hot = prefix + "_hot";
  const std::string cold_a = prefix + "_a";
  const std::string cold_b = prefix + "_b";
  for (const std::string& table : {hot, cold_a, cold_b}) {
    requests.push_back("CREATE " + table + " CYCLIC " + std::to_string(n) +
                       " 2 2");
  }
  const auto ranking_text = [n](int rotation) {
    std::ostringstream os;
    for (int i = 0; i < n; ++i) {
      if (i != 0) os << ' ';
      os << (i + rotation) % n;
    }
    return os.str();
  };
  for (int wave = 0; wave < 3; ++wave) {
    // A bulk append backlog on the hot table makes its next RUN drain a
    // real batch (the executor's park-while-draining path)...
    std::ostringstream bulk;
    bulk << "APPEND " << hot;
    for (int r = 0; r < bulk_rankings; ++r) {
      if (r != 0) bulk << " ;";
      bulk << ' ' << ranking_text((wave * bulk_rankings + r) % n);
    }
    requests.push_back(bulk.str());
    requests.push_back("RUN " + hot + " A4");
    // ...while the cold tables' traffic is free to overlap it.
    for (const std::string& table : {cold_a, cold_b}) {
      requests.push_back("APPEND " + table + " " + ranking_text(wave));
      requests.push_back("RUN " + table + " A3");
      requests.push_back("STATS " + table);
    }
    requests.push_back("# comment between waves");
    requests.push_back("");
  }
  requests.push_back("REMOVE " + hot + " 0");
  requests.push_back("FLUSH " + hot);
  requests.push_back("RUN " + hot + " all");
  requests.push_back("STATS " + hot);
  requests.push_back("TABLES");
  return requests;
}

}  // namespace manirank::testing

#endif  // MANIRANK_SERVE_HAVE_SOCKETS

#endif  // MANIRANK_TESTS_SERVE_TEST_UTIL_H_
