#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.h"
#include "util/rng.h"

namespace manirank::lp {
namespace {

TEST(SimplexTest, TwoVariableMaximisation) {
  // min -x - y  s.t. x + y <= 1, x,y in [0,1]  ->  obj -1 on the facet.
  Model m;
  int x = m.AddVariable(0, 1, -1.0);
  int y = m.AddVariable(0, 1, -1.0);
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 1.0);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
  EXPECT_NEAR(r.x[x] + r.x[y], 1.0, 1e-9);
}

TEST(SimplexTest, ClassicTextbookLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> x=2, y=6, obj 36.
  Model m;
  int x = m.AddVariable(0, kInfinity, -3.0);
  int y = m.AddVariable(0, kInfinity, -5.0);
  m.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  m.AddConstraint({{y, 2.0}}, Sense::kLessEqual, 12.0);
  m.AddConstraint({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-8);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
  EXPECT_NEAR(r.x[y], 6.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + 2y s.t. x + y == 3, x in [0, 2], y in [0, 5] -> x=2, y=1.
  Model m;
  int x = m.AddVariable(0, 2, 1.0);
  int y = m.AddVariable(0, 5, 2.0);
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 3.0);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
  EXPECT_NEAR(r.x[y], 1.0, 1e-8);
  EXPECT_NEAR(r.objective, 4.0, 1e-8);
}

TEST(SimplexTest, GreaterEqualNeedsPhaseOne) {
  // min x + y s.t. x + y >= 2, x,y in [0, 3] -> obj 2.
  Model m;
  int x = m.AddVariable(0, 3, 1.0);
  int y = m.AddVariable(0, 3, 1.0);
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 2.0);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-8);
}

TEST(SimplexTest, DetectsInfeasibility) {
  Model m;
  int x = m.AddVariable(0, 1, 1.0);
  m.AddConstraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsConflictingEqualities) {
  Model m;
  int x = m.AddVariable(0, 10, 0.0);
  int y = m.AddVariable(0, 10, 0.0);
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 3.0);
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 5.0);
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x with x >= 0 unbounded above and a non-binding constraint.
  Model m;
  m.AddVariable(0, kInfinity, -1.0);  // x: drives the objective down forever
  int y = m.AddVariable(0, 1, 0.0);
  m.AddConstraint({{y, 1.0}}, Sense::kLessEqual, 1.0);
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, UnconstrainedModelUsesBounds) {
  Model m;
  int x = m.AddVariable(-2, 5, 1.0);   // minimise -> lower bound
  int y = m.AddVariable(-2, 5, -1.0);  // maximise -> upper bound
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], -2.0, 1e-12);
  EXPECT_NEAR(r.x[y], 5.0, 1e-12);
  EXPECT_NEAR(r.objective, -7.0, 1e-12);
}

TEST(SimplexTest, UnconstrainedUnbounded) {
  Model m;
  m.AddVariable(0, kInfinity, -1.0);
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, ObjectiveOffsetIsIncluded) {
  Model m;
  int x = m.AddVariable(0, 1, 1.0);
  m.set_objective_offset(10.0);
  m.AddConstraint({{x, 1.0}}, Sense::kGreaterEqual, 0.5);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.5, 1e-9);
}

TEST(SimplexTest, NegativeRhsLessEqual) {
  // min y s.t. -x - y <= -2 (i.e. x + y >= 2), x,y in [0, 3].
  Model m;
  int x = m.AddVariable(0, 3, 0.0);
  int y = m.AddVariable(0, 3, 1.0);
  m.AddConstraint({{x, -1.0}, {y, -1.0}}, Sense::kLessEqual, -2.0);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
}

TEST(SimplexTest, VariableFixedByEqualBounds) {
  Model m;
  int x = m.AddVariable(2, 2, 5.0);
  int y = m.AddVariable(0, 10, 1.0);
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 5.0);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-12);
  EXPECT_NEAR(r.x[y], 3.0, 1e-8);
}

TEST(SimplexTest, BoundOverridesAreRespected) {
  Model m;
  int x = m.AddVariable(0, 10, -1.0);
  m.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 8.0);
  LpResult r = SolveLpWithBounds(m, {0.0}, {4.0});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 4.0, 1e-9);
}

TEST(SimplexTest, CrossedBoundOverridesAreInfeasible) {
  Model m;
  m.AddVariable(0, 10, 1.0);
  EXPECT_EQ(SolveLpWithBounds(m, {5.0}, {4.0}).status,
            SolveStatus::kInfeasible);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  int x = m.AddVariable(0, kInfinity, -1.0);
  int y = m.AddVariable(0, kInfinity, -1.0);
  m.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 1.0);
  m.AddConstraint({{x, 2.0}, {y, 2.0}}, Sense::kLessEqual, 2.0);
  m.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  m.AddConstraint({{y, 1.0}}, Sense::kLessEqual, 1.0);
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

TEST(SimplexTest, IterationLimitSurfacesAsStatus) {
  Model m;
  int x = m.AddVariable(0, kInfinity, -3.0);
  int y = m.AddVariable(0, kInfinity, -5.0);
  m.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  m.AddConstraint({{y, 2.0}}, Sense::kLessEqual, 12.0);
  m.AddConstraint({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  SimplexOptions options;
  options.max_iterations = 1;
  LpResult r = SolveLp(m, options);
  EXPECT_EQ(r.status, SolveStatus::kIterationLimit);
}

/// Property: on random box-constrained problems the simplex solution is
/// feasible and no grid point beats it.
class SimplexRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexRandomTest, BeatsGridSearch) {
  Rng rng(GetParam());
  const int nv = 3;
  Model m;
  for (int j = 0; j < nv; ++j) {
    m.AddVariable(0.0, 1.0, rng.NextDouble() * 4.0 - 2.0);
  }
  const int nc = 2 + static_cast<int>(rng.NextUint64(3));
  for (int c = 0; c < nc; ++c) {
    Constraint con;
    for (int j = 0; j < nv; ++j) {
      con.terms.push_back({j, std::round((rng.NextDouble() * 4.0 - 2.0) * 4) / 4});
    }
    con.sense = rng.NextDouble() < 0.5 ? Sense::kLessEqual : Sense::kGreaterEqual;
    // Anchor the rhs at a random interior point so the problem is feasible.
    double lhs_at_half = 0.0;
    for (auto& [j, coef] : con.terms) lhs_at_half += coef * 0.5;
    con.rhs = lhs_at_half +
              (con.sense == Sense::kLessEqual ? 1.0 : -1.0) * rng.NextDouble();
    m.AddConstraint(std::move(con));
  }
  LpResult r = SolveLp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << GetParam();
  ASSERT_TRUE(m.IsFeasible(r.x, 1e-6));
  // Grid search over [0,1]^3 at step 0.125.
  double best_grid = 1e100;
  constexpr int kSteps = 9;
  std::vector<double> x(nv);
  for (int i = 0; i < kSteps; ++i) {
    x[0] = i / 8.0;
    for (int j = 0; j < kSteps; ++j) {
      x[1] = j / 8.0;
      for (int k = 0; k < kSteps; ++k) {
        x[2] = k / 8.0;
        if (m.IsFeasible(x, 1e-9)) {
          best_grid = std::min(best_grid, m.EvaluateObjective(x));
        }
      }
    }
  }
  EXPECT_LE(r.objective, best_grid + 1e-7) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace manirank::lp
