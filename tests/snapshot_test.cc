// Snapshot/restore tests: the versioned binary format of data/snapshot.h
// (roundtrip fidelity, loud rejection of corrupt / truncated / version-
// mismatched files) and the serving-layer contract — a table restored from
// a snapshot must serve every summarized-context-supported method
// bit-identically to the table the snapshot was taken from, and a failed
// restore must leave the manager untouched.

#include "data/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/method_registry.h"
#include "mallows/mallows.h"
#include "serve/context_manager.h"
#include "serve/protocol.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

using serve::ContextManager;
using serve::Dispatcher;
using serve::TableStats;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "manirank_" + name + ".snap";
}

/// A table + Mallows profile fixture shared by the roundtrip tests.
struct Fixture {
  CandidateTable table;
  std::vector<Ranking> base;
};

Fixture MakeFixture(int n, uint64_t seed, int num_rankings) {
  Rng rng(seed);
  return {testing::CyclicTable(n, 2, 2),
          MallowsModel(testing::RandomRanking(n, &rng), 0.6)
              .SampleMany(num_rankings, seed)};
}

/// Serializes `snapshot` to a string (for corruption tests).
std::string ToBytes(const TableSnapshot& snapshot) {
  std::ostringstream os(std::ios::binary);
  WriteTableSnapshot(os, snapshot);
  return os.str();
}

TableSnapshot FromBytes(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return ReadTableSnapshot(is);
}

TEST(SnapshotFormatTest, RoundTripPreservesEveryField) {
  Fixture f = MakeFixture(10, 401, 23);
  ConsensusContext ctx(f.base, f.table);
  TableSnapshot original{f.table, ctx.Snapshot(), /*applied_batches=*/7,
                         /*applied_rankings=*/23};
  const std::string bytes = ToBytes(original);
  TableSnapshot restored = FromBytes(bytes);

  // Table: attributes, value names, per-candidate values.
  ASSERT_EQ(restored.table.num_candidates(), f.table.num_candidates());
  ASSERT_EQ(restored.table.num_attributes(), f.table.num_attributes());
  for (int a = 0; a < f.table.num_attributes(); ++a) {
    EXPECT_EQ(restored.table.attribute(a).name, f.table.attribute(a).name);
    EXPECT_EQ(restored.table.attribute(a).values,
              f.table.attribute(a).values);
    for (CandidateId c = 0; c < f.table.num_candidates(); ++c) {
      EXPECT_EQ(restored.table.value(c, a), f.table.value(c, a));
    }
  }
  // Summary: counts, generation, Borda points, precedence — bit-exact.
  EXPECT_EQ(restored.summary.num_rankings,
            static_cast<int64_t>(f.base.size()));
  EXPECT_EQ(restored.summary.generation, original.summary.generation);
  EXPECT_EQ(restored.summary.borda_points, original.summary.borda_points);
  ASSERT_NE(restored.summary.precedence, nullptr);
  EXPECT_EQ(restored.summary.precedence->ToDense(),
            original.summary.precedence->ToDense());
  EXPECT_EQ(restored.applied_batches, 7u);
  EXPECT_EQ(restored.applied_rankings, 23u);
}

TEST(SnapshotFormatTest, BordaOnlySummaryRoundTripsWithoutPrecedence) {
  Fixture f = MakeFixture(9, 402, 12);
  StreamingAccumulator acc(9);  // Track::kBordaOnly
  for (const Ranking& r : f.base) acc.Fold(r, 0);
  TableSnapshot original{f.table, acc.Finish(), 0, 0};
  TableSnapshot restored = FromBytes(ToBytes(original));
  EXPECT_EQ(restored.summary.precedence, nullptr);
  EXPECT_EQ(restored.summary.borda_points, original.summary.borda_points);
}

TEST(SnapshotFormatTest, CorruptTruncatedAndForeignFilesFailLoudly) {
  Fixture f = MakeFixture(8, 403, 10);
  ConsensusContext ctx(f.base, f.table);
  const std::string bytes =
      ToBytes(TableSnapshot{f.table, ctx.Snapshot(), 0, 0});

  // Every single-byte flip anywhere in the file must be caught (the
  // trailing checksum covers header and payload; flipping checksum bytes
  // themselves also mismatches).
  for (size_t pos : {size_t{0}, size_t{9}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    EXPECT_THROW(FromBytes(corrupt), SnapshotFormatError)
        << "flipped byte " << pos;
  }
  // Truncation at any prefix length, including mid-header.
  for (size_t keep : {size_t{0}, size_t{4}, size_t{11}, bytes.size() / 2,
                      bytes.size() - 1}) {
    EXPECT_THROW(FromBytes(bytes.substr(0, keep)), SnapshotFormatError)
        << "truncated to " << keep;
  }
  // Trailing garbage is rejected too (checksum covers it... appended
  // bytes shift the trailer, so the checksum mismatches).
  EXPECT_THROW(FromBytes(bytes + "x"), SnapshotFormatError);
  // A non-snapshot file.
  EXPECT_THROW(FromBytes("candidate,Gender\n0,M\n1,F\n"),
               SnapshotFormatError);
}

TEST(SnapshotFormatTest, VersionMismatchIsRejectedEvenWithValidChecksum) {
  Fixture f = MakeFixture(8, 404, 6);
  ConsensusContext ctx(f.base, f.table);
  std::string bytes = ToBytes(TableSnapshot{f.table, ctx.Snapshot(), 0, 0});
  // Bump the version field (little-endian u32 right after the magic) and
  // re-stamp the trailing FNV-1a 64 so only the version differs.
  bytes[8] = static_cast<char>(bytes[8] + 1);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i + 8 < bytes.size(); ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + i] = static_cast<char>((h >> (8 * i)) & 0xffu);
  }
  try {
    FromBytes(bytes);
    FAIL() << "version mismatch must throw";
  } catch (const SnapshotFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotContextTest, SnapshotSeedsABitIdenticalSummarizedContext) {
  Fixture f = MakeFixture(11, 405, 30);
  ConsensusContext retained(f.base, f.table);
  ConsensusContext restored(retained.Snapshot(), f.table);
  EXPECT_FALSE(restored.has_base_rankings());
  EXPECT_EQ(restored.num_rankings(), f.base.size());
  EXPECT_EQ(restored.BordaPoints(), retained.BordaPoints());
  EXPECT_EQ(restored.Precedence().ToDense(), retained.Precedence().ToDense());
  // The restored precedence matrix is adopted, never rebuilt.
  EXPECT_EQ(restored.stats().precedence_builds, 0);
  // Support flags partition the registry exactly as documented.
  for (const MethodSpec& m : AllMethods()) {
    EXPECT_TRUE(retained.SupportsMethod(m)) << m.id;
    EXPECT_EQ(restored.SupportsMethod(m), !m.requires_base) << m.id;
  }
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  for (const MethodSpec& m : AllMethods()) {
    if (m.requires_base) continue;
    const ConsensusOutput a = retained.RunMethod(m, options);
    const ConsensusOutput b = restored.RunMethod(m, options);
    EXPECT_EQ(a.consensus.order(), b.consensus.order()) << m.id;
    EXPECT_EQ(a.satisfied, b.satisfied) << m.id;
  }
}

TEST(SnapshotContextTest, EmptyProfileCannotBeSnapshotted) {
  Fixture f = MakeFixture(8, 406, 3);
  ConsensusContext empty(std::vector<Ranking>{}, f.table);
  EXPECT_THROW(empty.Snapshot(), std::invalid_argument);
}

TEST(SnapshotContextTest, RestoredContextKeepsStreamingMutability) {
  // A restored shard is not frozen: appended rankings fold into the
  // summarized state exactly as a live streaming context would.
  Fixture f = MakeFixture(10, 407, 15);
  ConsensusContext retained(f.base, f.table);
  ConsensusContext restored(retained.Snapshot(), f.table);
  Rng rng(408);
  std::vector<Ranking> grown = f.base;
  for (int i = 0; i < 4; ++i) {
    Ranking extra = testing::RandomRanking(10, &rng);
    grown.push_back(extra);
    restored.AddRanking(std::move(extra));
  }
  ConsensusContext fresh(grown, f.table);
  EXPECT_EQ(restored.BordaPoints(), fresh.BordaPoints());
  EXPECT_EQ(restored.Precedence().ToDense(), fresh.Precedence().ToDense());
  EXPECT_EQ(restored.num_rankings(), grown.size());
}

// --- serving-layer roundtrip --------------------------------------------

TEST(SnapshotServingTest, ManagerRoundTripServesBitIdentically) {
  Fixture f = MakeFixture(10, 409, 20);
  ContextManager manager;
  manager.Create("t", f.table, f.base);
  // Leave a pending wave in the queue: SnapshotTable must drain it first
  // so the snapshot lands on a batch boundary.
  Rng rng(410);
  manager.Append("t", {testing::RandomRanking(10, &rng),
                       testing::RandomRanking(10, &rng)});
  const TableSnapshot snapshot = [&] {
    TableSnapshot snap = manager.SnapshotTable("t");
    return snap;
  }();
  const TableStats after = manager.Stats("t");
  EXPECT_EQ(after.pending_ops, 0u) << "snapshot must drain the queue";
  EXPECT_EQ(snapshot.summary.num_rankings, 22);
  EXPECT_EQ(snapshot.summary.generation, after.generation);
  EXPECT_EQ(snapshot.applied_batches, after.applied_batches);
  EXPECT_EQ(snapshot.applied_rankings, after.applied_rankings);

  // File roundtrip into a second manager (a "restarted server").
  const std::string path = TempPath("roundtrip");
  WriteTableSnapshotFile(path, snapshot);
  ContextManager restarted;
  const TableStats restored =
      restarted.RestoreTable("t", ReadTableSnapshotFile(path));
  EXPECT_EQ(restored.num_rankings, 22u);
  EXPECT_EQ(restored.generation, after.generation);
  EXPECT_EQ(restored.applied_batches, after.applied_batches);
  EXPECT_EQ(restored.applied_rankings, after.applied_rankings);
  EXPECT_TRUE(restored.summarized);

  // Every supported method serves bit-identically to the original table.
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  const std::vector<const MethodSpec*> supported =
      restarted.SupportedMethods("t");
  std::vector<std::string> ids;
  for (const MethodSpec* m : supported) ids.push_back(m->id);
  EXPECT_EQ(ids, (std::vector<std::string>{"A1", "A2", "A3", "A4", "B1"}));
  for (const MethodSpec* m : supported) {
    const ConsensusOutput a = manager.Run("t", *m, options);
    const ConsensusOutput b = restarted.Run("t", *m, options);
    EXPECT_EQ(a.consensus.order(), b.consensus.order()) << m->id;
    EXPECT_EQ(a.satisfied, b.satisfied) << m->id;
  }
  std::remove(path.c_str());
}

TEST(SnapshotServingTest, ProtocolRoundTripRunAllMatchesPerMethod) {
  // End-to-end through the line protocol: RUN all on the restored table
  // reports, for every supported method, the exact consensus the
  // pre-snapshot table reported.
  ContextManager manager;
  Dispatcher dispatcher(&manager);
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 9 3 3"),
            "OK CREATE t candidates=9 rankings=0");
  Rng rng(411);
  for (int i = 0; i < 4; ++i) {
    std::ostringstream os;
    os << "APPEND t";
    const Ranking ranking = testing::RandomRanking(9, &rng);
    for (CandidateId c : ranking.order()) os << ' ' << c;
    const std::string response = dispatcher.Handle(os.str());
    ASSERT_EQ(response.rfind("OK", 0), 0u) << os.str() << " -> " << response;
  }
  const std::string before = dispatcher.Handle("RUN t all LIMIT 60");
  ASSERT_EQ(before.rfind("OK RUN", 0), 0u) << before;
  const std::string path = TempPath("protocol");
  ASSERT_EQ(dispatcher.Handle("SNAPSHOT t " + path).rfind("OK SNAPSHOT", 0),
            0u);
  ASSERT_EQ(dispatcher.Handle("RESTORE copy " + path).rfind("OK RESTORE", 0),
            0u);
  const std::string after = dispatcher.Handle("RUN copy all LIMIT 60");
  ASSERT_EQ(after.rfind("OK RUN", 0), 0u) << after;
  // Each supported method's "<id> sat=... consensus=..." segment must
  // appear verbatim in the pre-snapshot sweep.
  for (const char* id : {"A1", "A2", "A3", "A4", "B1"}) {
    const std::string key = std::string(" ") + id + " sat=";
    const size_t at = after.find(key);
    ASSERT_NE(at, std::string::npos) << id << " missing in: " << after;
    size_t end = after.find(" A", at + 1);
    const size_t end_b = after.find(" B", at + 1);
    if (end == std::string::npos ||
        (end_b != std::string::npos && end_b < end)) {
      end = end_b;
    }
    const std::string segment = after.substr(
        at, end == std::string::npos ? std::string::npos : end - at);
    EXPECT_NE(before.find(segment), std::string::npos)
        << "restored " << segment << " not served pre-snapshot";
  }
  // The unsupported baselines are absent from the restored sweep.
  EXPECT_EQ(after.find(" B2 "), std::string::npos);
  EXPECT_EQ(after.find(" B3 "), std::string::npos);
  EXPECT_EQ(after.find(" B4 "), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotServingTest, FailedRestoreLeavesManagerUntouched) {
  ContextManager manager;
  Dispatcher dispatcher(&manager);
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 6 2 3"),
            "OK CREATE t candidates=6 rankings=0");
  ASSERT_EQ(dispatcher.Handle("APPEND t 0 1 2 3 4 5").rfind("OK", 0), 0u);
  ASSERT_EQ(dispatcher.Handle("FLUSH t").rfind("OK", 0), 0u);
  const std::string path = TempPath("corrupt");
  ASSERT_EQ(dispatcher.Handle("SNAPSHOT t " + path).rfind("OK", 0), 0u);
  // Corrupt the file on disk, then try to restore from it.
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(30);
    file.put('\x7f');
  }
  const std::string stats_before = dispatcher.Handle("STATS t");
  const std::string response = dispatcher.Handle("RESTORE u " + path);
  EXPECT_EQ(response.rfind("ERR bad-snapshot", 0), 0u) << response;
  EXPECT_FALSE(manager.Has("u")) << "failed restore must register nothing";
  EXPECT_EQ(dispatcher.Handle("STATS t"), stats_before);
  // Restoring onto a live name is also rejected without touching it.
  EXPECT_EQ(dispatcher.Handle("RESTORE t " + path).rfind("ERR", 0), 0u);
  EXPECT_EQ(dispatcher.Handle("STATS t"), stats_before);
  std::remove(path.c_str());
}

TEST(SnapshotServingTest, SnapshotOfEmptyTableIsRejected) {
  ContextManager manager;
  Dispatcher dispatcher(&manager);
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 6 2 3"),
            "OK CREATE t candidates=6 rankings=0");
  const std::string response =
      dispatcher.Handle("SNAPSHOT t " + TempPath("empty"));
  EXPECT_EQ(response.rfind("ERR empty-table", 0), 0u) << response;
}

TEST(SnapshotServingTest, RemoveOnRestoredTableIsRejectedAtEnqueue) {
  Fixture f = MakeFixture(8, 412, 6);
  ContextManager manager;
  manager.Create("t", f.table, f.base);
  ContextManager restarted;
  restarted.RestoreTable("t", manager.SnapshotTable("t"));
  // Rejected immediately — never enqueued, so the queue cannot wedge on
  // an op the summarized context can never apply.
  EXPECT_THROW(restarted.Remove("t", 0), std::logic_error);
  const TableStats stats = restarted.Stats("t");
  EXPECT_EQ(stats.pending_ops, 0u);
  // Appends still fold (streaming mutability survives the restore).
  Rng rng(413);
  restarted.Append("t", {testing::RandomRanking(8, &rng)});
  EXPECT_EQ(restarted.Flush("t"), 1u);
  EXPECT_EQ(restarted.Stats("t").num_rankings, 7u);
}

// --- exact (v2, retained-profile) snapshots -----------------------------

TEST(ExactSnapshotTest, RoundTripPreservesTheRetainedProfile) {
  Fixture f = MakeFixture(9, 414, 14);
  ConsensusContext ctx(f.base, f.table);
  TableSnapshot original{f.table, ctx.Snapshot(), /*applied_batches=*/2,
                         /*applied_rankings=*/14, /*retained=*/true, f.base};
  TableSnapshot restored = FromBytes(ToBytes(original));
  EXPECT_TRUE(restored.retained);
  ASSERT_EQ(restored.base_rankings.size(), f.base.size());
  for (size_t i = 0; i < f.base.size(); ++i) {
    EXPECT_EQ(restored.base_rankings[i].order(), f.base[i].order());
  }
  EXPECT_EQ(restored.summary.borda_points, original.summary.borda_points);
}

TEST(ExactSnapshotTest, InconsistentRetainedSectionsRefuseToSerialize) {
  Fixture f = MakeFixture(8, 415, 5);
  ConsensusContext ctx(f.base, f.table);
  // retained set but the profile is short of summary.num_rankings...
  std::vector<Ranking> short_profile(f.base.begin(), f.base.end() - 1);
  TableSnapshot short_snap{f.table, ctx.Snapshot(), 0, 0, true,
                           short_profile};
  EXPECT_THROW(ToBytes(short_snap), std::invalid_argument);
  // ...and base rankings without the retained flag are a caller bug too.
  TableSnapshot unflagged{f.table, ctx.Snapshot(), 0, 0, false, f.base};
  EXPECT_THROW(ToBytes(unflagged), std::invalid_argument);
}

TEST(ExactSnapshotTest, SummarizedTablesRejectExactSnapshots) {
  Fixture f = MakeFixture(8, 416, 6);
  ContextManager manager;
  manager.Create("t", f.table, f.base);
  ContextManager restarted;
  restarted.RestoreTable("t", manager.SnapshotTable("t"));
  // The restored table's profile was folded away — there is nothing
  // exact to write.
  EXPECT_THROW(restarted.SnapshotTable("t", serve::SnapshotMode::kExact),
               std::logic_error);
  // kAuto degrades to summarized instead of throwing.
  const TableSnapshot snap =
      restarted.SnapshotTable("t", serve::SnapshotMode::kAuto);
  EXPECT_FALSE(snap.retained);
}

TEST(ExactSnapshotTest, ExactRestoreServesAllMethodsAndRemove) {
  Fixture f = MakeFixture(9, 417, 16);
  ContextManager manager;
  manager.Create("t", f.table, f.base);
  const std::string path = TempPath("exact");
  WriteTableSnapshotFile(path,
                         manager.SnapshotTable("t", serve::SnapshotMode::kExact));
  ContextManager restarted;
  const TableStats restored =
      restarted.RestoreTable("t", ReadTableSnapshotFile(path));
  EXPECT_FALSE(restored.summarized);
  EXPECT_EQ(restored.num_rankings, f.base.size());
  // The FULL registry — the base-ranking baselines included — serves
  // bit-identically to the never-snapshotted table.
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  ASSERT_EQ(restarted.SupportedMethods("t").size(), AllMethods().size());
  for (const MethodSpec& m : AllMethods()) {
    const ConsensusOutput a = manager.Run("t", m, options);
    const ConsensusOutput b = restarted.Run("t", m, options);
    EXPECT_EQ(a.consensus.order(), b.consensus.order()) << m.id;
    EXPECT_EQ(a.satisfied, b.satisfied) << m.id;
  }
  // REMOVE works on the restored profile — and stays in lockstep with
  // the original.
  manager.Remove("t", 3);
  restarted.Remove("t", 3);
  EXPECT_EQ(manager.Flush("t"), restarted.Flush("t"));
  EXPECT_EQ(manager.Stats("t").num_rankings, restarted.Stats("t").num_rankings);
  const ConsensusOutput a = manager.Run("t", *FindMethod("B3"), options);
  const ConsensusOutput b = restarted.Run("t", *FindMethod("B3"), options);
  EXPECT_EQ(a.consensus.order(), b.consensus.order());
  std::remove(path.c_str());
}

TEST(ExactSnapshotTest, ProtocolExactTokenEndToEnd) {
  ContextManager manager;
  Dispatcher dispatcher(&manager);
  ASSERT_EQ(dispatcher.Handle("CREATE t CYCLIC 8 2 2").rfind("OK", 0), 0u);
  Rng rng(418);
  for (int i = 0; i < 5; ++i) {
    const Ranking ranking = testing::RandomRanking(8, &rng);
    std::ostringstream os;
    os << "APPEND t";
    for (CandidateId c : ranking.order()) os << ' ' << c;
    const std::string r = dispatcher.Handle(os.str());
    ASSERT_EQ(r.rfind("OK", 0), 0u) << os.str() << "\n-> " << r;
  }
  const std::string before = dispatcher.Handle("RUN t all LIMIT 60");
  const std::string path = TempPath("exact_protocol");
  const std::string response = dispatcher.Handle("SNAPSHOT t " + path +
                                                 " EXACT");
  ASSERT_EQ(response.rfind("OK SNAPSHOT", 0), 0u) << response;
  // The EXACT token is echoed, and ONLY then (the default response is
  // pinned by ProtocolRoundTripRunAllMatchesPerMethod).
  EXPECT_NE(response.find(" exact=1"), std::string::npos) << response;
  ASSERT_EQ(dispatcher.Handle("RESTORE copy " + path).rfind("OK", 0), 0u);
  // The restored copy runs the full sweep bit-identically — B2-B4 now
  // report instead of being dropped from the sweep.
  const std::string after = dispatcher.Handle("RUN copy all LIMIT 60");
  EXPECT_EQ(after.substr(after.find(' ', 7)), before.substr(before.find(' ', 7)))
      << "\nbefore: " << before << "\nafter:  " << after;
  EXPECT_NE(after.find(" B2 "), std::string::npos);
  // And REMOVE is accepted on the exact-restored table.
  EXPECT_EQ(dispatcher.Handle("REMOVE copy 0").rfind("OK", 0), 0u);
  // An exact-restored table is retained, so EXACT works on it again; a
  // summarized-restored one draws the documented conflict.
  const std::string sum_path = TempPath("exact_sum");
  ASSERT_EQ(dispatcher.Handle("SNAPSHOT t " + sum_path).rfind("OK", 0), 0u);
  ASSERT_EQ(dispatcher.Handle("RESTORE s " + sum_path).rfind("OK", 0), 0u);
  EXPECT_EQ(dispatcher
                .Handle("SNAPSHOT s " + TempPath("exact_reject") + " EXACT")
                .rfind("ERR conflict", 0),
            0u);
  std::remove(path.c_str());
  std::remove(sum_path.c_str());
}

}  // namespace
}  // namespace manirank
