// Streaming profile engine tests: the StreamingAccumulator kernel, the
// summarized ConsensusContext, and the incremental mutation API. The
// standard is the engine equivalence contract of ROADMAP.md: every
// incremental path must be bit-identical to rebuilding from scratch over
// the same profile.

#include "core/streaming.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/aggregators.h"
#include "core/context.h"
#include "core/method_registry.h"
#include "core/precedence.h"
#include "mallows/mallows.h"
#include "test_util.h"
#include "util/rng.h"

namespace manirank {
namespace {

struct Fixture {
  CandidateTable table;
  std::vector<Ranking> base;
  MallowsModel model;
};

Fixture MakeFixture(int n, uint64_t seed, double theta, int num_rankings) {
  Rng rng(seed);
  CandidateTable table = testing::CyclicTable(n, 2, 2);
  Ranking modal = testing::RandomRanking(n, &rng);
  MallowsModel model(modal, theta);
  return {std::move(table), model.SampleMany(num_rankings, seed),
          std::move(model)};
}

std::vector<int64_t> BordaPointsOf(const std::vector<Ranking>& base) {
  const int n = base[0].size();
  std::vector<int64_t> points(n, 0);
  for (const Ranking& r : base) {
    for (int p = 0; p < n; ++p) points[r.At(p)] += n - 1 - p;
  }
  return points;
}

TEST(StreamingAccumulatorTest, FoldMatchesMaterializedProfile) {
  Fixture f = MakeFixture(12, 201, 0.6, 37);
  StreamingAccumulator acc(12,
                           StreamingAccumulator::Track::kBordaAndPrecedence);
  // Spread folds across worker slots; the merged summary must not depend
  // on the slot assignment.
  for (size_t i = 0; i < f.base.size(); ++i) {
    acc.Fold(f.base[i], i % acc.num_workers());
  }
  EXPECT_EQ(acc.count(), static_cast<int64_t>(f.base.size()));
  StreamingSummary summary = acc.Finish();
  EXPECT_EQ(summary.num_candidates, 12);
  EXPECT_EQ(summary.num_rankings, static_cast<int64_t>(f.base.size()));
  EXPECT_EQ(summary.borda_points, BordaPointsOf(f.base));
  ASSERT_NE(summary.precedence, nullptr);
  EXPECT_EQ(summary.precedence->ToDense(),
            PrecedenceMatrix::Build(f.base).ToDense());
  // Finish resets the accumulator.
  EXPECT_EQ(acc.count(), 0);
  StreamingSummary empty = acc.Finish();
  EXPECT_EQ(empty.num_rankings, 0);
}

TEST(StreamingAccumulatorTest, ParallelDrainIsDeterministic) {
  const int n = 15;
  Rng rng(203);
  MallowsModel model(testing::RandomRanking(n, &rng), 0.6);
  auto sample = [&](size_t i) {
    Rng sample_rng = MallowsModel::SampleRng(/*seed=*/77, i);
    return model.Sample(&sample_rng);
  };
  StreamingAccumulator acc(n);
  acc.Drain(500, sample);
  StreamingSummary parallel = acc.Finish();
  // Same stream folded serially into one worker slot.
  StreamingAccumulator serial(n);
  for (size_t i = 0; i < 500; ++i) serial.Fold(sample(i), 0);
  StreamingSummary expected = serial.Finish();
  EXPECT_EQ(parallel.num_rankings, expected.num_rankings);
  EXPECT_EQ(parallel.borda_points, expected.borda_points);
}

TEST(StreamingAccumulatorTest, RejectsBadInputs) {
  EXPECT_THROW(StreamingAccumulator(0), std::invalid_argument);
  StreamingAccumulator acc(5);
  EXPECT_THROW(acc.Fold(Ranking::Identity(4), 0), std::invalid_argument);
}

TEST(SummarizedContextTest, FairBordaMatchesMaterializedContext) {
  Fixture f = MakeFixture(14, 205, 0.6, 40);
  StreamingAccumulator acc(14);
  for (const Ranking& r : f.base) acc.Fold(r, 0);
  ConsensusContext streamed(acc.Finish(), f.table);
  ConsensusContext materialized(f.base, f.table);
  EXPECT_FALSE(streamed.has_base_rankings());
  EXPECT_EQ(streamed.num_rankings(), f.base.size());
  ConsensusOptions options;
  options.delta = 0.2;
  ConsensusOutput from_stream = streamed.RunMethod("A3", options);
  ConsensusOutput from_profile = materialized.RunMethod("A3", options);
  EXPECT_EQ(from_stream.consensus.order(), from_profile.consensus.order());
  EXPECT_EQ(from_stream.satisfied, from_profile.satisfied);
}

TEST(SummarizedContextTest, PrecedenceMethodsMatchWhenTracked) {
  Fixture f = MakeFixture(11, 207, 0.8, 25);
  StreamingAccumulator acc(11,
                           StreamingAccumulator::Track::kBordaAndPrecedence);
  for (size_t i = 0; i < f.base.size(); ++i) {
    acc.Fold(f.base[i], i % acc.num_workers());
  }
  ConsensusContext streamed(acc.Finish(), f.table);
  ConsensusContext materialized(f.base, f.table);
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  for (const char* id : {"A2", "A3", "A4", "B1"}) {
    ConsensusOutput from_stream = streamed.RunMethod(id, options);
    ConsensusOutput from_profile = materialized.RunMethod(id, options);
    EXPECT_EQ(from_stream.consensus.order(), from_profile.consensus.order())
        << id;
  }
  EXPECT_EQ(streamed.stats().precedence_builds, 0)
      << "streamed precedence must be adopted, not rebuilt";
}

TEST(SummarizedContextTest, BaseDependentAccessorsThrow) {
  Fixture f = MakeFixture(10, 209, 0.5, 15);
  StreamingAccumulator acc(10);  // Borda only: no precedence either
  for (const Ranking& r : f.base) acc.Fold(r, 0);
  ConsensusContext streamed(acc.Finish(), f.table);
  EXPECT_THROW(streamed.Precedence(), std::logic_error);
  EXPECT_THROW(streamed.BaseParityScores(), std::logic_error);
  EXPECT_THROW(streamed.KemenyFairnessWeights(), std::logic_error);
  EXPECT_THROW(streamed.WeightedPrecedence({1.0}), std::logic_error);
  EXPECT_THROW(streamed.RunMethod("B3"), std::logic_error);
  EXPECT_THROW(streamed.RemoveRanking(0), std::logic_error);
  // But the streaming-friendly surface still works.
  EXPECT_NO_THROW(streamed.RunMethod("A3"));
}

TEST(SummarizedContextTest, AddRankingFoldsWithoutRetaining) {
  Fixture f = MakeFixture(10, 211, 0.6, 20);
  StreamingAccumulator acc(10,
                           StreamingAccumulator::Track::kBordaAndPrecedence);
  for (const Ranking& r : f.base) acc.Fold(r, 0);
  ConsensusContext streamed(acc.Finish(), f.table);
  Rng rng(213);
  std::vector<Ranking> grown = f.base;
  for (int i = 0; i < 5; ++i) {
    Ranking extra = testing::RandomRanking(10, &rng);
    grown.push_back(extra);
    streamed.AddRanking(std::move(extra));
  }
  EXPECT_EQ(streamed.num_rankings(), grown.size());
  EXPECT_TRUE(streamed.base_rankings().empty());
  EXPECT_EQ(streamed.BordaPoints(), BordaPointsOf(grown));
  EXPECT_EQ(streamed.Precedence().ToDense(),
            PrecedenceMatrix::Build(grown).ToDense());
  EXPECT_EQ(streamed.generation(), 5u);
}

TEST(SummarizedContextTest, EquivalencePropertyAcrossRandomizedProfiles) {
  // Property: for ANY profile, a StreamingSummary-seeded summarized
  // context must produce bit-identical consensus rankings to a fully
  // retained context for every precedence/Borda-served method. Randomized
  // over profile size, candidate count, table shape, dispersion, and the
  // worker-slot assignment of the folds.
  Rng meta_rng(0xF00D);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 8 + static_cast<int>(meta_rng.NextUint64(6));       // 8..13
    const int num_rankings = 5 + static_cast<int>(meta_rng.NextUint64(40));
    // Dispersion 0.35..0.8: spans weak and strong consensus while keeping
    // B1's exact Kemeny solve tractable at these candidate counts.
    const double theta =
        0.35 + 0.15 * static_cast<double>(meta_rng.NextUint64(4));
    const uint64_t seed = 9000 + static_cast<uint64_t>(trial);
    CandidateTable table =
        meta_rng.NextUint64(2) == 0
            ? testing::CyclicTable(n, 2, 2)
            : testing::RandomTable(n, {2, 3}, &meta_rng);
    Rng rng(seed);
    MallowsModel model(testing::RandomRanking(n, &rng), theta);
    std::vector<Ranking> base = model.SampleMany(num_rankings, seed);

    StreamingAccumulator acc(n,
                             StreamingAccumulator::Track::kBordaAndPrecedence);
    for (const Ranking& r : base) {
      acc.Fold(r, meta_rng.NextUint64(acc.num_workers()));
    }
    ConsensusContext streamed(acc.Finish(), table);
    ConsensusContext materialized(base, table);
    ConsensusOptions options;
    options.delta = 0.2;
    options.time_limit_seconds = 60.0;
    for (const char* id : {"A2", "A3", "A4", "B1"}) {
      const ConsensusOutput from_stream = streamed.RunMethod(id, options);
      const ConsensusOutput from_profile = materialized.RunMethod(id, options);
      EXPECT_EQ(from_stream.consensus.order(), from_profile.consensus.order())
          << "trial " << trial << " n=" << n << " |R|=" << num_rankings
          << " theta=" << theta << " method " << id;
      EXPECT_EQ(from_stream.satisfied, from_profile.satisfied)
          << "trial " << trial << " method " << id;
    }
    // The raw folded state agrees too, not just the method outputs.
    EXPECT_EQ(streamed.BordaPoints(), materialized.BordaPoints());
    EXPECT_EQ(streamed.Precedence().ToDense(),
              materialized.Precedence().ToDense());
    EXPECT_EQ(streamed.stats().precedence_builds, 0) << "trial " << trial;
  }
}

TEST(SummarizedContextTest, CandidateCountMismatchThrows) {
  Fixture f = MakeFixture(10, 215, 0.6, 5);
  StreamingAccumulator acc(9);
  acc.Fold(Ranking::Identity(9), 0);
  EXPECT_THROW(ConsensusContext(acc.Finish(), f.table),
               std::invalid_argument);
}

TEST(MutableContextTest, InterleavedAddRemoveMatchesFreshContext) {
  // The acceptance contract of the streaming engine: after any
  // interleaving of Add/Remove on a warm context, every cached structure
  // and every method output is bit-identical to a context freshly built
  // over the surviving profile.
  for (uint64_t seed : {301u, 302u, 303u}) {
    Fixture f = MakeFixture(9, seed, 0.6, 12);
    ConsensusContext ctx(f.base, f.table);
    // Warm every incremental cache so mutations exercise the delta paths
    // rather than starting cold.
    ctx.Precedence();
    ctx.BaseParityScores();
    ctx.BordaPoints();
    std::vector<Ranking> shadow = f.base;
    Rng rng(seed * 7);
    int mutations = 0;
    for (int op = 0; op < 30; ++op) {
      const bool remove = shadow.size() > 4 && rng.NextUint64(3) == 0;
      if (remove) {
        const size_t index = rng.NextUint64(shadow.size());
        ctx.RemoveRanking(index);
        shadow.erase(shadow.begin() + static_cast<ptrdiff_t>(index));
        ++mutations;
      } else if (rng.NextUint64(4) == 0) {
        // Batch append through AddRankings.
        std::vector<Ranking> batch;
        for (int b = 0; b < 2; ++b) {
          Rng sample_rng = MallowsModel::SampleRng(seed, 1000 + op * 2 + b);
          batch.push_back(f.model.Sample(&sample_rng));
        }
        shadow.insert(shadow.end(), batch.begin(), batch.end());
        ctx.AddRankings(std::move(batch));
        mutations += 2;
      } else {
        Rng sample_rng = MallowsModel::SampleRng(seed, 2000 + op);
        Ranking extra = f.model.Sample(&sample_rng);
        shadow.push_back(extra);
        ctx.AddRanking(std::move(extra));
        ++mutations;
      }
    }
    ASSERT_EQ(ctx.num_rankings(), shadow.size());
    EXPECT_EQ(ctx.generation(), static_cast<uint64_t>(mutations));

    ConsensusContext fresh(shadow, f.table);
    EXPECT_EQ(ctx.Precedence().ToDense(), fresh.Precedence().ToDense());
    EXPECT_EQ(ctx.BordaPoints(), fresh.BordaPoints());
    EXPECT_EQ(ctx.BaseParityScores(), fresh.BaseParityScores());
    EXPECT_EQ(ctx.KemenyFairnessWeights(), fresh.KemenyFairnessWeights());
    EXPECT_EQ(ctx.FairestBaseIndex(), fresh.FairestBaseIndex());

    // Everything above was maintained by deltas, never rebuilt.
    const ContextStats stats = ctx.stats();
    EXPECT_EQ(stats.precedence_builds, 1);
    EXPECT_EQ(stats.parity_score_builds, 1);
    EXPECT_EQ(stats.borda_builds, 1);
    EXPECT_EQ(stats.precedence_delta_updates, mutations);
    EXPECT_EQ(stats.parity_delta_updates, mutations);

    // And the full method sweep agrees with the fresh context.
    ConsensusOptions options;
    options.delta = 0.2;
    options.time_limit_seconds = 60.0;
    std::vector<ConsensusOutput> mutated_out = ctx.RunAll(options);
    std::vector<ConsensusOutput> fresh_out = fresh.RunAll(options);
    ASSERT_EQ(mutated_out.size(), fresh_out.size());
    for (size_t i = 0; i < mutated_out.size(); ++i) {
      EXPECT_EQ(mutated_out[i].consensus.order(),
                fresh_out[i].consensus.order())
          << AllMethods()[i].name << " seed=" << seed;
      EXPECT_EQ(mutated_out[i].satisfied, fresh_out[i].satisfied)
          << AllMethods()[i].name << " seed=" << seed;
    }
  }
}

TEST(MutableContextTest, MutationDirtiesOnlyWhatItMust) {
  Fixture f = MakeFixture(10, 304, 0.7, 18);
  ConsensusContext ctx(f.base, f.table);
  ConsensusOptions options;
  options.delta = 0.2;
  options.time_limit_seconds = 60.0;
  ctx.Precedence();              // warm the unweighted matrix
  ctx.RunMethod("B2", options);  // builds one weighted variant
  ASSERT_EQ(ctx.stats().weighted_builds, 1);

  Rng rng(305);
  ctx.AddRanking(testing::RandomRanking(10, &rng));
  ctx.RunMethod("B2", options);
  const ContextStats stats = ctx.stats();
  // The weighted variant depends on the whole weight vector, so the
  // mutation dropped it and B2 rebuilt it...
  EXPECT_EQ(stats.weighted_builds, 2);
  // ...while the unweighted matrix and parity scores absorbed the delta.
  EXPECT_EQ(stats.precedence_builds, 1);
  EXPECT_EQ(stats.parity_score_builds, 1);
  EXPECT_EQ(stats.generation, 1u);
}

TEST(MutableContextTest, BadMutationsThrow) {
  Fixture f = MakeFixture(8, 306, 0.6, 6);
  ConsensusContext ctx(f.base, f.table);
  EXPECT_THROW(ctx.AddRanking(Ranking::Identity(7)), std::invalid_argument);
  EXPECT_THROW(ctx.RemoveRanking(6), std::out_of_range);
  EXPECT_EQ(ctx.generation(), 0u);
}

TEST(MutableContextTest, MutationDuringRunThrows) {
  // The thread-safety contract of context.h: mutations must be exclusive
  // with RunMethod/RunAll readers. A method that mutates its own context
  // mid-run is the deterministic way to catch the guard in the act.
  Fixture f = MakeFixture(8, 307, 0.6, 8);
  ConsensusContext ctx(f.base, f.table);
  Rng rng(308);
  Ranking extra = testing::RandomRanking(8, &rng);
  MethodSpec probe;
  probe.id = "probe";
  probe.name = "mutating-probe";
  probe.run = [&](const ConsensusContext& inner,
                  const ConsensusOptions&) -> ConsensusOutput {
    EXPECT_EQ(&inner, &ctx);
    EXPECT_THROW(ctx.AddRanking(extra), std::logic_error);
    EXPECT_THROW(ctx.AddRankings({extra}), std::logic_error);
    EXPECT_THROW(ctx.RemoveRanking(0), std::logic_error);
    ConsensusOutput out;
    out.consensus = Ranking::Identity(8);
    return out;
  };
  ctx.RunMethod(probe);
  // The failed mutations left no trace, and mutations work again once the
  // run has drained.
  EXPECT_EQ(ctx.generation(), 0u);
  EXPECT_EQ(ctx.num_rankings(), 8u);
  EXPECT_NO_THROW(ctx.AddRanking(extra));
  EXPECT_EQ(ctx.num_rankings(), 9u);
}

// The streaming fold path (which batches 64 rankings through the
// bit-sliced kernel per worker) must stay bit-identical to a materialized
// build under every kernel flavor the machine can run, including the
// forced scalar reference.
TEST(StreamingAccumulatorTest, FoldMatchesMaterializedUnderEveryKernel) {
  // 87 rankings: worker buffers flush one full 64-batch plus a remainder.
  Fixture f = MakeFixture(70, 401, 0.6, 87);
  std::vector<std::vector<double>> reference;
  {
    testing::ScopedKernelEnv env("scalar");
    reference = PrecedenceMatrix::Build(f.base).ToDense();
  }
  for (const std::string& kernel : testing::AllPrecedenceKernels()) {
    testing::ScopedKernelEnv env(kernel.c_str());
    StreamingAccumulator acc(70,
                             StreamingAccumulator::Track::kBordaAndPrecedence);
    for (size_t i = 0; i < f.base.size(); ++i) {
      acc.Fold(f.base[i], i % acc.num_workers());
    }
    StreamingSummary summary = acc.Finish();
    ASSERT_NE(summary.precedence, nullptr);
    EXPECT_EQ(summary.precedence->ToDense(), reference)
        << "kernel=" << kernel;
    EXPECT_EQ(summary.borda_points, BordaPointsOf(f.base))
        << "kernel=" << kernel;
  }
}

// Snapshot -> restore -> append under every kernel: a summary round-trip
// through the dense matrix (the snapshot wire format) must keep the batch
// fold exact, so restored shards inherit the equivalence guarantee.
TEST(SummarizedContextTest, SnapshotRestoreAppendMatchesUnderEveryKernel) {
  Fixture f = MakeFixture(66, 407, 0.6, 40);
  std::vector<Ranking> appended;
  for (int i = 0; i < 70; ++i) {
    Rng sample_rng = MallowsModel::SampleRng(407, 5000 + i);
    appended.push_back(f.model.Sample(&sample_rng));
  }
  std::vector<Ranking> grown = f.base;
  grown.insert(grown.end(), appended.begin(), appended.end());
  std::vector<std::vector<double>> reference;
  {
    testing::ScopedKernelEnv env("scalar");
    reference = PrecedenceMatrix::Build(grown).ToDense();
  }
  for (const std::string& kernel : testing::AllPrecedenceKernels()) {
    testing::ScopedKernelEnv env(kernel.c_str());
    ConsensusContext ctx(f.base, f.table);
    ConsensusContext restored(ctx.Snapshot(), f.table);
    restored.AddRankings(appended);
    EXPECT_EQ(restored.Precedence().ToDense(), reference)
        << "kernel=" << kernel;
  }
}

}  // namespace
}  // namespace manirank
