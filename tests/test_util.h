#ifndef MANIRANK_TESTS_TEST_UTIL_H_
#define MANIRANK_TESTS_TEST_UTIL_H_

#include <numeric>
#include <vector>

#include "core/candidate_table.h"
#include "core/ranking.h"
#include "util/rng.h"

namespace manirank::testing {

/// Uniformly random ranking over n candidates.
inline Ranking RandomRanking(int n, Rng* rng) {
  std::vector<CandidateId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return Ranking(std::move(order));
}

/// Random candidate table with the given attribute domain sizes; every
/// candidate gets uniform random values (all domains guaranteed non-empty
/// by construction for n >= sum of domain sizes is NOT enforced — groups
/// may be empty and groupings only materialise non-empty groups).
inline CandidateTable RandomTable(int n, const std::vector<int>& domain_sizes,
                                  Rng* rng) {
  std::vector<Attribute> attributes;
  for (size_t a = 0; a < domain_sizes.size(); ++a) {
    Attribute attr;
    attr.name = "attr" + std::to_string(a);
    for (int v = 0; v < domain_sizes[a]; ++v) {
      attr.values.push_back("v" + std::to_string(v));
    }
    attributes.push_back(std::move(attr));
  }
  std::vector<std::vector<AttributeValue>> values(
      n, std::vector<AttributeValue>(domain_sizes.size()));
  for (int c = 0; c < n; ++c) {
    for (size_t a = 0; a < domain_sizes.size(); ++a) {
      values[c][a] =
          static_cast<AttributeValue>(rng->NextUint64(domain_sizes[a]));
    }
  }
  return CandidateTable(std::move(attributes), std::move(values));
}

/// A two-attribute table where candidate i gets attribute values
/// (i % d0, (i / d0) % d1) — deterministic, all groups non-empty for
/// n >= d0 * d1.
inline CandidateTable CyclicTable(int n, int d0, int d1) {
  std::vector<Attribute> attributes(2);
  attributes[0].name = "A";
  for (int v = 0; v < d0; ++v) attributes[0].values.push_back("a" + std::to_string(v));
  attributes[1].name = "B";
  for (int v = 0; v < d1; ++v) attributes[1].values.push_back("b" + std::to_string(v));
  std::vector<std::vector<AttributeValue>> values(n, std::vector<AttributeValue>(2));
  for (int c = 0; c < n; ++c) {
    values[c][0] = static_cast<AttributeValue>(c % d0);
    values[c][1] = static_cast<AttributeValue>((c / d0) % d1);
  }
  return CandidateTable(std::move(attributes), std::move(values));
}

}  // namespace manirank::testing

#endif  // MANIRANK_TESTS_TEST_UTIL_H_
