#ifndef MANIRANK_TESTS_TEST_UTIL_H_
#define MANIRANK_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/candidate_table.h"
#include "core/ranking.h"
#include "data/synthetic.h"
#include "util/cpu_dispatch.h"
#include "util/rng.h"

namespace manirank::testing {

/// Forces one environment variable for one scope, restoring the prior
/// value (or its absence) on destruction. nullptr value unsets it. Only
/// safe while nothing concurrently reads the variable: setenv is not
/// thread-safe against getenv on another thread.
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_prior_ = old != nullptr;
    if (had_prior_) prior_ = old;
    if (value == nullptr) {
      unsetenv(name);
    } else {
      setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnvVar() {
    if (had_prior_) {
      setenv(name_.c_str(), prior_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnvVar(const ScopedEnvVar&) = delete;
  ScopedEnvVar& operator=(const ScopedEnvVar&) = delete;

 private:
  std::string name_;
  bool had_prior_ = false;
  std::string prior_;
};

/// Forces MANIRANK_KERNEL (the precedence kernel override) for one scope.
/// nullptr = auto dispatch. The variable is re-read at the start of each
/// PrecedenceMatrix build/batch, on the calling thread.
class ScopedKernelEnv : public ScopedEnvVar {
 public:
  explicit ScopedKernelEnv(const char* value)
      : ScopedEnvVar("MANIRANK_KERNEL", value) {}
};

/// Forces MANIRANK_POLLER (the serving event-poller override) for one
/// scope: "epoll", "poll", "auto", or nullptr (= auto). Read once per
/// ServeExecutor::Start, so scope it around server construction+Start.
class ScopedPollerEnv : public ScopedEnvVar {
 public:
  explicit ScopedPollerEnv(const char* value)
      : ScopedEnvVar("MANIRANK_POLLER", value) {}
};

/// Every precedence kernel this machine can run: the scalar reference and
/// portable bit-sliced always, AVX2 when the CPU supports it.
inline std::vector<std::string> AllPrecedenceKernels() {
  std::vector<std::string> kernels = {"scalar", "portable"};
  if (CpuSupportsAvx2()) kernels.push_back("avx2");
  return kernels;
}

/// Uniformly random ranking over n candidates.
inline Ranking RandomRanking(int n, Rng* rng) {
  std::vector<CandidateId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return Ranking(std::move(order));
}

/// Random candidate table with the given attribute domain sizes; every
/// candidate gets uniform random values (all domains guaranteed non-empty
/// by construction for n >= sum of domain sizes is NOT enforced — groups
/// may be empty and groupings only materialise non-empty groups).
inline CandidateTable RandomTable(int n, const std::vector<int>& domain_sizes,
                                  Rng* rng) {
  std::vector<Attribute> attributes;
  for (size_t a = 0; a < domain_sizes.size(); ++a) {
    Attribute attr;
    attr.name = "attr" + std::to_string(a);
    for (int v = 0; v < domain_sizes[a]; ++v) {
      attr.values.push_back("v" + std::to_string(v));
    }
    attributes.push_back(std::move(attr));
  }
  std::vector<std::vector<AttributeValue>> values(
      n, std::vector<AttributeValue>(domain_sizes.size()));
  for (int c = 0; c < n; ++c) {
    for (size_t a = 0; a < domain_sizes.size(); ++a) {
      values[c][a] =
          static_cast<AttributeValue>(rng->NextUint64(domain_sizes[a]));
    }
  }
  return CandidateTable(std::move(attributes), std::move(values));
}

/// A two-attribute table where candidate i gets attribute values
/// (i % d0, (i / d0) % d1) — deterministic, all groups non-empty for
/// n >= d0 * d1. Delegates to the library's builder (the one behind the
/// serve protocol's CREATE..CYCLIC) so tests and server construct
/// bit-identical tables.
inline CandidateTable CyclicTable(int n, int d0, int d1) {
  return MakeCyclicTable(n, d0, d1);
}

}  // namespace manirank::testing

#endif  // MANIRANK_TESTS_TEST_UTIL_H_
