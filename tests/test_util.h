#ifndef MANIRANK_TESTS_TEST_UTIL_H_
#define MANIRANK_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/candidate_table.h"
#include "core/ranking.h"
#include "data/synthetic.h"
#include "util/cpu_dispatch.h"
#include "util/rng.h"

namespace manirank::testing {

/// Forces MANIRANK_KERNEL (the precedence kernel override) for one scope,
/// restoring the prior value on destruction. nullptr = auto dispatch.
/// Only safe while no concurrent PrecedenceMatrix build/batch is running:
/// the variable is re-read at the start of each call, on the calling
/// thread.
class ScopedKernelEnv {
 public:
  explicit ScopedKernelEnv(const char* value) {
    const char* old = std::getenv("MANIRANK_KERNEL");
    had_prior_ = old != nullptr;
    if (had_prior_) prior_ = old;
    if (value == nullptr) {
      unsetenv("MANIRANK_KERNEL");
    } else {
      setenv("MANIRANK_KERNEL", value, /*overwrite=*/1);
    }
  }
  ~ScopedKernelEnv() {
    if (had_prior_) {
      setenv("MANIRANK_KERNEL", prior_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv("MANIRANK_KERNEL");
    }
  }
  ScopedKernelEnv(const ScopedKernelEnv&) = delete;
  ScopedKernelEnv& operator=(const ScopedKernelEnv&) = delete;

 private:
  bool had_prior_ = false;
  std::string prior_;
};

/// Every precedence kernel this machine can run: the scalar reference and
/// portable bit-sliced always, AVX2 when the CPU supports it.
inline std::vector<std::string> AllPrecedenceKernels() {
  std::vector<std::string> kernels = {"scalar", "portable"};
  if (CpuSupportsAvx2()) kernels.push_back("avx2");
  return kernels;
}

/// Uniformly random ranking over n candidates.
inline Ranking RandomRanking(int n, Rng* rng) {
  std::vector<CandidateId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return Ranking(std::move(order));
}

/// Random candidate table with the given attribute domain sizes; every
/// candidate gets uniform random values (all domains guaranteed non-empty
/// by construction for n >= sum of domain sizes is NOT enforced — groups
/// may be empty and groupings only materialise non-empty groups).
inline CandidateTable RandomTable(int n, const std::vector<int>& domain_sizes,
                                  Rng* rng) {
  std::vector<Attribute> attributes;
  for (size_t a = 0; a < domain_sizes.size(); ++a) {
    Attribute attr;
    attr.name = "attr" + std::to_string(a);
    for (int v = 0; v < domain_sizes[a]; ++v) {
      attr.values.push_back("v" + std::to_string(v));
    }
    attributes.push_back(std::move(attr));
  }
  std::vector<std::vector<AttributeValue>> values(
      n, std::vector<AttributeValue>(domain_sizes.size()));
  for (int c = 0; c < n; ++c) {
    for (size_t a = 0; a < domain_sizes.size(); ++a) {
      values[c][a] =
          static_cast<AttributeValue>(rng->NextUint64(domain_sizes[a]));
    }
  }
  return CandidateTable(std::move(attributes), std::move(values));
}

/// A two-attribute table where candidate i gets attribute values
/// (i % d0, (i / d0) % d1) — deterministic, all groups non-empty for
/// n >= d0 * d1. Delegates to the library's builder (the one behind the
/// serve protocol's CREATE..CYCLIC) so tests and server construct
/// bit-identical tables.
inline CandidateTable CyclicTable(int n, int d0, int d1) {
  return MakeCyclicTable(n, d0, d1);
}

}  // namespace manirank::testing

#endif  // MANIRANK_TESTS_TEST_UTIL_H_
