// Concurrency stress tests for the persistent ParallelFor worker pool:
// nested regions, many concurrent top-level callers, and MANIRANK_THREADS
// edge values, all under repetition. util_test.cc covers the single-shot
// semantics; this suite hammers the pool the way a serving process does.
// The CI TSan job runs this binary to catch data races.

#include "util/threading.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace manirank {
namespace {

/// Sums [0, count) through ParallelFor with per-worker partial sums (the
/// worker index contract: at most one thread per slot at a time).
uint64_t ParallelSum(size_t count, size_t threads) {
  std::vector<uint64_t> partial(kMaxThreads + 1, 0);
  ParallelFor(
      count,
      [&](size_t begin, size_t end, size_t worker) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i;
        partial[worker] += local;
      },
      threads);
  return std::accumulate(partial.begin(), partial.end(), uint64_t{0});
}

uint64_t ExpectedSum(size_t count) {
  return count == 0 ? 0 : static_cast<uint64_t>(count) * (count - 1) / 2;
}

TEST(ThreadingStressTest, ConcurrentTopLevelCallersUnderRepetition) {
  // Several top-level threads each running many fan-outs concurrently:
  // every region must see correct results and the pool must never deadlock
  // even while blocked callers help drain their own partitions.
  constexpr int kCallers = 8;
  constexpr int kReps = 60;
  constexpr size_t kCount = 4096;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int rep = 0; rep < kReps; ++rep) {
        const size_t threads = 1 + static_cast<size_t>((c + rep) % 6);
        if (ParallelSum(kCount, threads) != ExpectedSum(kCount)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadingStressTest, NestedRegionsFromConcurrentCallers) {
  // Bodies that themselves call ParallelFor, launched from several
  // top-level threads at once. Nested regions run inline on pool workers;
  // the combination must neither deadlock nor double-run any index.
  constexpr int kCallers = 6;
  constexpr int kReps = 25;
  constexpr size_t kOuter = 64;
  constexpr size_t kInner = 128;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < kReps; ++rep) {
        std::atomic<uint64_t> total{0};
        ParallelFor(kOuter, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            ParallelFor(kInner, [&](size_t ib, size_t ie, size_t) {
              uint64_t local = 0;
              for (size_t j = ib; j < ie; ++j) local += j + i;
              total.fetch_add(local, std::memory_order_relaxed);
            });
          }
        });
        const uint64_t expected =
            kOuter * ExpectedSum(kInner) + ExpectedSum(kOuter) * kInner;
        if (total.load() != expected) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadingStressTest, PoolStopsGrowingAfterWarmup) {
  // Warm the pool to its peak demand, then hammer it: no further thread
  // may ever be constructed (the whole point of the persistent pool).
  ParallelSum(1 << 14, 8);
  const uint64_t created_after_warmup = PooledThreadsCreated();
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < 100; ++rep) {
        ASSERT_EQ(ParallelSum(2048, 8), ExpectedSum(2048));
      }
    });
  }
  for (std::thread& t : callers) t.join();
  // Concurrent callers may legitimately grow the pool beyond one caller's
  // demand (8 submitted partitions each), but never past the cap…
  EXPECT_LE(PooledThreadsCreated(), kMaxThreads);
  // …and a second identical hammering reuses every worker.
  const uint64_t created_after_storm = PooledThreadsCreated();
  for (int rep = 0; rep < 50; ++rep) {
    ASSERT_EQ(ParallelSum(2048, 8), ExpectedSum(2048));
  }
  EXPECT_EQ(PooledThreadsCreated(), created_after_storm);
  EXPECT_GE(created_after_storm, created_after_warmup);
}

/// Saves/restores MANIRANK_THREADS so env mutations cannot leak into
/// other tests. setenv/getenv are not thread-safe against each other, so
/// the env-twiddling tests run strictly single-threaded regions between
/// mutations (ParallelFor reads the env on the calling thread, before the
/// fan-out).
class ThreadsEnvStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("MANIRANK_THREADS");
    if (prev != nullptr) saved_ = prev;
  }
  void TearDown() override {
    if (saved_.has_value()) {
      setenv("MANIRANK_THREADS", saved_->c_str(), 1);
    } else {
      unsetenv("MANIRANK_THREADS");
    }
  }
  std::optional<std::string> saved_;
};

TEST_F(ThreadsEnvStressTest, EdgeValuesUnderRepetition) {
  // 1 = serial, kMaxThreads = the clamp boundary, kMaxThreads + 1 =
  // clamped back down. Every configuration must produce exact sums over
  // repeated regions. The fan-out count stays below kMaxThreads so the
  // clamped configs exercise the env path without actually constructing
  // hundreds of parked workers (ParallelFor takes min(threads, count)).
  const std::string max_threads = std::to_string(kMaxThreads);
  const std::string over_max = std::to_string(kMaxThreads + 1);
  for (const std::string& value : {std::string("1"), max_threads, over_max}) {
    setenv("MANIRANK_THREADS", value.c_str(), 1);
    const size_t expected_count =
        std::min(static_cast<size_t>(std::stoul(value)), kMaxThreads);
    EXPECT_EQ(DefaultThreadCount(), expected_count) << value;
    for (int rep = 0; rep < 20; ++rep) {
      ASSERT_EQ(ParallelSum(96, /*threads=*/0), ExpectedSum(96))
          << "MANIRANK_THREADS=" << value << " rep=" << rep;
    }
  }
}

TEST_F(ThreadsEnvStressTest, MalformedValuesAreRejectedUnderRepetition) {
  // Malformed values must be rejected (fall back to the hardware default)
  // on every single read — the env is re-read per ParallelFor call, so a
  // sticky parse would show up under repetition.
  unsetenv("MANIRANK_THREADS");
  const size_t hw_default = DefaultThreadCount();
  for (const char* bad : {"abc", "4x4", "-1", "", "  ", "1e3", "0x8"}) {
    setenv("MANIRANK_THREADS", bad, 1);
    for (int rep = 0; rep < 10; ++rep) {
      ASSERT_EQ(DefaultThreadCount(), hw_default)
          << "value='" << bad << "' rep=" << rep;
      ASSERT_EQ(ParallelSum(512, /*threads=*/0), ExpectedSum(512));
    }
  }
}

TEST_F(ThreadsEnvStressTest, SerialAndParallelAgreeBitForBit) {
  // The partition must never affect integer reductions: serial (1) and a
  // spread of thread counts all agree exactly.
  unsetenv("MANIRANK_THREADS");
  const uint64_t expected = ExpectedSum(100000);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                         size_t{16}, size_t{64}}) {
    EXPECT_EQ(ParallelSum(100000, threads), expected) << threads;
  }
}

}  // namespace
}  // namespace manirank
