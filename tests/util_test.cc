#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/fenwick.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/threading.h"

namespace manirank {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextUint64(bound), bound);
  }
}

TEST(RngTest, NextUint64CoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SplitStreamsAreDecorrelated) {
  Rng parent(19);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child());
  EXPECT_LT(same, 2);
}

TEST(FenwickTest, PrefixSums) {
  Fenwick f(10);
  for (size_t i = 0; i < 10; ++i) f.Add(i, static_cast<int64_t>(i));
  // Prefix of [0, k): sum of 0..k-1.
  for (size_t k = 0; k <= 10; ++k) {
    EXPECT_EQ(f.PrefixSum(k), static_cast<int64_t>(k * (k - 1) / 2));
  }
}

TEST(FenwickTest, RangeSum) {
  Fenwick f(8);
  for (size_t i = 0; i < 8; ++i) f.Add(i, 1);
  EXPECT_EQ(f.RangeSum(2, 5), 3);
  EXPECT_EQ(f.RangeSum(5, 5), 0);
  EXPECT_EQ(f.RangeSum(5, 2), 0);
  EXPECT_EQ(f.Total(), 8);
}

TEST(FenwickTest, NegativeUpdates) {
  Fenwick f(4);
  f.Add(0, 5);
  f.Add(2, -3);
  EXPECT_EQ(f.PrefixSum(1), 5);
  EXPECT_EQ(f.PrefixSum(3), 2);
}

TEST(FenwickTest, LowerBoundFindsKthElement) {
  Fenwick f(10);
  // Free slots at 1, 3, 5, 7, 9.
  for (size_t i : {1u, 3u, 5u, 7u, 9u}) f.Add(i, 1);
  EXPECT_EQ(f.LowerBound(1), 1u);
  EXPECT_EQ(f.LowerBound(2), 3u);
  EXPECT_EQ(f.LowerBound(3), 5u);
  EXPECT_EQ(f.LowerBound(5), 9u);
}

TEST(FenwickTest, LowerBoundAgainstLinearScan) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.NextUint64(64);
    Fenwick f(n);
    std::vector<int64_t> raw(n, 0);
    for (size_t i = 0; i < n; ++i) {
      int64_t v = static_cast<int64_t>(rng.NextUint64(3));
      raw[i] = v;
      f.Add(i, v);
    }
    const int64_t total = f.Total();
    for (int64_t target = 1; target <= total; ++target) {
      size_t expected = 0;
      int64_t acc = 0;
      for (; expected < n; ++expected) {
        acc += raw[expected];
        if (acc >= target) break;
      }
      EXPECT_EQ(f.LowerBound(target), expected) << "n=" << n << " t=" << target;
    }
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(0.12345, 3), "0.123");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 1), "2.0");
}

TEST(ThreadingTest, ParallelForCoversRangeExactlyOnce) {
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(kCount, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadingTest, ParallelForZeroAndOne) {
  int calls = 0;
  ParallelFor(0, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](size_t begin, size_t end, size_t) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadingTest, ExplicitThreadCount) {
  std::atomic<long> sum{0};
  ParallelFor(
      100, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) sum += static_cast<long>(i);
      },
      3);
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadingTest, PoolReusesWorkersAfterWarmup) {
  auto run = [] {
    std::atomic<long> sum{0};
    ParallelFor(
        64, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) sum += 1;
        },
        4);
    EXPECT_EQ(sum.load(), 64);
  };
  run();  // warmup: pool grows to 3 pooled workers (one chunk is inline)
  const uint64_t created_after_warmup = PooledThreadsCreated();
  EXPECT_GE(PooledWorkerCount(), 3u);
  for (int i = 0; i < 50; ++i) run();
  EXPECT_EQ(PooledThreadsCreated(), created_after_warmup)
      << "repeated parallel regions must not construct fresh threads";
}

TEST(ThreadingTest, HelpingWaitNeverStealsLockHoldingSiblings) {
  // Regression: the caller's inline partition holds a cache mutex and
  // opens a nested parallel region (the ConsensusContext::Precedence()
  // fill pattern) while sibling partitions of the OUTER fan-out — which
  // also take the mutex — are still queued. The helping wait must only
  // run its own fan-out's jobs; stealing a queued sibling here would
  // relock the held mutex on the same thread and deadlock.
  std::mutex cache_mu;
  std::atomic<long> total{0};
  ParallelFor(
      8,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          std::lock_guard<std::mutex> lock(cache_mu);
          ParallelFor(
              32,
              [&](size_t b, size_t e, size_t) {
                for (size_t j = b; j < e; ++j) total += 1;
              },
              4);
        }
      },
      4);
  EXPECT_EQ(total.load(), 8 * 32);
}

TEST(ThreadingTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  std::atomic<long> total{0};
  ParallelFor(
      8,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          ParallelFor(
              10, [&](size_t b, size_t e, size_t) {
                for (size_t j = b; j < e; ++j) total += 1;
              },
              4);
        }
      },
      4);
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadingTest, ThrowingBodyQuiescesThenRethrowsOnCaller) {
  std::atomic<long> executed{0};
  EXPECT_THROW(
      ParallelFor(
          16,
          [&](size_t begin, size_t end, size_t) {
            for (size_t i = begin; i < end; ++i) executed.fetch_add(1);
            if (begin == 0) throw std::runtime_error("partition failed");
          },
          4),
      std::runtime_error);
  // Every partition ran to completion before the rethrow.
  EXPECT_EQ(executed.load(), 16);
}

class ThreadEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("MANIRANK_THREADS");
    if (prev != nullptr) saved_ = prev;
  }
  void TearDown() override {
    if (saved_.has_value()) {
      setenv("MANIRANK_THREADS", saved_->c_str(), 1);
    } else {
      unsetenv("MANIRANK_THREADS");
    }
  }
  std::optional<std::string> saved_;
};

TEST_F(ThreadEnvTest, NumericValuesPassThrough) {
  setenv("MANIRANK_THREADS", "4", 1);
  EXPECT_EQ(DefaultThreadCount(), 4u);
  setenv("MANIRANK_THREADS", "0", 1);
  EXPECT_EQ(DefaultThreadCount(), 0u);
  setenv("MANIRANK_THREADS", "2 ", 1);  // trailing whitespace tolerated
  EXPECT_EQ(DefaultThreadCount(), 2u);
}

TEST_F(ThreadEnvTest, MalformedValuesFallBackToHardwareDefault) {
  unsetenv("MANIRANK_THREADS");
  const size_t hw_default = DefaultThreadCount();
  for (const char* bad : {"abc", "", "4x", "-3", "--2", " ", "3.5"}) {
    setenv("MANIRANK_THREADS", bad, 1);
    EXPECT_EQ(DefaultThreadCount(), hw_default) << "value: '" << bad << "'";
  }
}

TEST_F(ThreadEnvTest, AbsurdValuesAreClamped) {
  unsetenv("MANIRANK_THREADS");
  const size_t hw_default = DefaultThreadCount();
  setenv("MANIRANK_THREADS", "999999999", 1);
  EXPECT_EQ(DefaultThreadCount(), kMaxThreads);
  setenv("MANIRANK_THREADS", "99999999999999999999999", 1);  // overflows long
  EXPECT_EQ(DefaultThreadCount(), hw_default);
}

}  // namespace
}  // namespace manirank
